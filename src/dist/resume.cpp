#include "dist/resume.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "dist/records.hpp"
#include "report/result_sink.hpp"

namespace mtr::dist {
namespace {

std::string describe(const std::string& sweep, const std::string& attack,
                     const std::string& scheduler, std::uint64_t hz,
                     std::uint64_t index) {
  return "cell " + std::to_string(index) + " [sweep=" + sweep +
         ", attack=" + attack + ", scheduler=" + scheduler +
         ", hz=" + std::to_string(hz) + "]";
}

/// Appending v4 records to a v2/v3 file would corrupt it (the CSV header
/// lacks the newer coordinate columns); refuse with a pointer at the
/// escape hatches instead of failing later with a confusing mismatch.
void check_resumable_schema(const std::string& path, const FileScan& scan) {
  if (scan.schema == 0 || scan.schema == report::kSchemaVersion) return;
  throw std::runtime_error(
      path + ": recorded with schema v" + std::to_string(scan.schema) +
      " but this build appends v" + std::to_string(report::kSchemaVersion) +
      " records — a cross-version resume would corrupt the file; merge the "
      "old output with mtr_merge or start the sweep fresh");
}

/// Enforces that a block recorded the seed set this invocation sweeps —
/// resume cannot mix replicate counts or first seeds.
void check_seeds(const std::string& path, const CellBlock& b,
                 const std::vector<std::uint64_t>& expected) {
  if (b.seeds == expected) return;
  throw std::runtime_error(
      path + ":" + std::to_string(b.first_line) + ": " +
      describe(b.sweep, b.attack, b.scheduler, b.hz, b.cell_index) +
      " was recorded with " + std::to_string(b.seeds.size()) +
      " seed(s) starting at " +
      (b.seeds.empty() ? std::string("?") : std::to_string(b.seeds.front())) +
      " but this invocation sweeps " + std::to_string(expected.size()) +
      " seed(s) starting at " +
      (expected.empty() ? std::string("?") : std::to_string(expected.front())) +
      " — resume with the original --seeds/--first-seed or start fresh");
}

}  // namespace

ResumeIndex ResumeIndex::scan(const std::string& csv_path,
                              const std::string& jsonl_path,
                              const std::vector<std::uint64_t>& expected_seeds,
                              std::optional<std::uint64_t> metrics_cells) {
  ResumeIndex index;
  index.csv_path_ = csv_path;
  index.jsonl_path_ = jsonl_path;

  // Complete blocks per file, in file order. JSONL blocks are complete by
  // construction (their summary line closed them); CSV closed blocks are
  // complete because a cell's rows are written in one burst, and the final
  // open block counts only when it carries the full expected seed set.
  std::vector<CellBlock> csv_done, jsonl_done;

  if (!jsonl_path.empty() && std::filesystem::exists(jsonl_path)) {
    index.have_jsonl_ = true;
    FileScan scan = scan_jsonl(jsonl_path);
    check_resumable_schema(jsonl_path, scan);
    for (CellBlock& b : scan.blocks) {
      check_seeds(jsonl_path, b, expected_seeds);
      jsonl_done.push_back(std::move(b));
    }
  }
  if (!csv_path.empty() && std::filesystem::exists(csv_path)) {
    index.have_csv_ = true;
    FileScan scan = scan_csv(csv_path);
    check_resumable_schema(csv_path, scan);
    // Until a block makes it into the agreed prefix below, only the header
    // is safe to keep — e.g. a corrupt JSONL next to an intact CSV must
    // roll the CSV back too, or the re-run cells would append duplicates.
    index.csv_valid_ = scan.header_bytes;
    for (CellBlock& b : scan.blocks) {
      // An open final block is a kill artifact only if its rows are a
      // strict prefix of the expected seed run; a full or contradictory
      // seed set is a complete cell and must face the mismatch check.
      const bool partial_tail =
          !b.closed && b.seeds.size() < expected_seeds.size() &&
          std::equal(b.seeds.begin(), b.seeds.end(), expected_seeds.begin());
      if (partial_tail) continue;
      check_seeds(csv_path, b, expected_seeds);
      csv_done.push_back(std::move(b));
    }
  }

  // A kill can land between the CSV write and the JSONL write of the same
  // cell, so the resumable prefix is what both files agree on.
  std::size_t n = index.have_csv_ && index.have_jsonl_
                      ? std::min(csv_done.size(), jsonl_done.size())
                      : std::max(csv_done.size(), jsonl_done.size());
  if (metrics_cells) {
    if (*metrics_cells > n) {
      // The snapshot covers cells the records lost (a tear across whole
      // cells). Folding on top of it would double-count; rerun everything
      // against a fresh fold instead.
      index.metrics_overrun_ = true;
      n = 0;
    } else if (*metrics_cells < n) {
      // Records ran ahead of the crash-consistent snapshot (it trails by
      // design). Roll the extra cells back so resumed counters fold once.
      n = static_cast<std::size_t>(*metrics_cells);
    }
  }
  const std::vector<CellBlock>& primary =
      index.have_jsonl_ ? jsonl_done : csv_done;
  const std::string& primary_path =
      index.have_jsonl_ ? jsonl_path : csv_path;
  for (std::size_t i = 0; i < n; ++i) {
    const CellBlock& b = primary[i];
    if (index.have_csv_ && index.have_jsonl_) {
      const CellBlock& c = csv_done[i];
      if (c.cell_index != b.cell_index || c.sweep != b.sweep ||
          c.attack != b.attack || c.scheduler != b.scheduler || c.hz != b.hz ||
          c.cpu_hz != b.cpu_hz || c.ram_frames != b.ram_frames ||
          c.reclaim_batch != b.reclaim_batch || c.ptrace != b.ptrace ||
          c.jiffy_timers != b.jiffy_timers || c.population != b.population ||
          c.attacker_fraction != b.attacker_fraction ||
          c.victim_nice != b.victim_nice || c.attacker_nice != b.attacker_nice)
        throw std::runtime_error(
            "resume: " + csv_path + ":" + std::to_string(c.first_line) +
            " and " + jsonl_path + ":" + std::to_string(b.first_line) +
            " disagree at block " + std::to_string(i) + " (" +
            describe(c.sweep, c.attack, c.scheduler, c.hz, c.cell_index) +
            " vs " + describe(b.sweep, b.attack, b.scheduler, b.hz, b.cell_index) +
            ") — were they written by the same invocation?");
    }
    Done done{b.sweep,       b.attack,      b.scheduler,
              b.ptrace,      b.hz,          b.cpu_hz,
              b.ram_frames,  b.reclaim_batch, b.jiffy_timers,
              b.population,  b.attacker_fraction, b.victim_nice,
              b.attacker_nice, primary_path, b.first_line};
    index.done_.emplace(b.cell_index, std::move(done));
    if (index.have_jsonl_) index.jsonl_valid_ = b.end_offset;
    if (index.have_csv_) index.csv_valid_ = csv_done[i].end_offset;
  }

  // Skipping a cell means every configured sink already has it. A
  // configured file that does not exist (deleted, or a format the
  // original run never wrote) would silently end up missing every
  // skipped cell — refuse instead.
  if (!index.done_.empty()) {
    const auto require_file = [&](const std::string& path, bool have) {
      if (path.empty() || have) return;
      throw std::runtime_error(
          "resume: " + path + " does not exist but the other output file " +
          "records " + std::to_string(index.done_.size()) +
          " complete cell(s) — resuming would leave " + path +
          " without them; restore it, drop it from the invocation, or "
          "start fresh");
    };
    require_file(csv_path, index.have_csv_);
    require_file(jsonl_path, index.have_jsonl_);
  }
  return index;
}

void ResumeIndex::truncate_files() const {
  const auto truncate = [](const std::string& path, std::uint64_t valid) {
    if (path.empty() || !std::filesystem::exists(path)) return;
    if (std::filesystem::file_size(path) > valid)
      std::filesystem::resize_file(path, valid);
  };
  if (have_jsonl_) truncate(jsonl_path_, jsonl_valid_);
  if (have_csv_) truncate(csv_path_, csv_valid_);
}

bool ResumeIndex::completed(const report::GridCellInfo& cell) const {
  const auto it = done_.find(cell.index);
  if (it == done_.end()) return false;
  const Done& d = it->second;
  // Field-by-field so the error can name exactly what contradicts the
  // recorded output.
  const char* mismatch =
      d.sweep != cell.sweep             ? "sweep"
      : d.attack != cell.attack         ? "attack"
      : d.scheduler != cell.scheduler   ? "scheduler"
      : d.hz != cell.hz                 ? "hz"
      : d.cpu_hz != cell.cpu_hz         ? "cpu_hz"
      : d.ram_frames != cell.ram_frames ? "ram_frames"
      : d.reclaim_batch != cell.reclaim_batch ? "reclaim_batch"
      : d.ptrace != cell.ptrace         ? "ptrace"
      : d.jiffy_timers != cell.jiffy_timers ? "jiffy_timers"
      : d.population != cell.population ? "population"
      : d.attacker_fraction != cell.attacker_fraction ? "attacker_fraction"
      : d.victim_nice != cell.victim_nice ? "victim_nice"
      : d.attacker_nice != cell.attacker_nice ? "attacker_nice"
                                        : nullptr;
  if (mismatch != nullptr)
    throw std::runtime_error(
        "resume: " + d.path + ":" + std::to_string(d.line) + ": recorded " +
        describe(d.sweep, d.attack, d.scheduler, d.hz, cell.index) +
        " but this invocation's grid puts " +
        describe(cell.sweep, cell.attack, cell.scheduler, cell.hz, cell.index) +
        " there (field '" + mismatch + "' differs) — resume requires the "
        "original sweep selection; start fresh or rerun with the original "
        "arguments");
  return true;
}

}  // namespace mtr::dist
