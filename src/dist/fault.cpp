#include "dist/fault.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "common/parse.hpp"

namespace mtr::dist {
namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::runtime_error(
      "fault-inject spec '" + spec + "': " + why +
      " (grammar: crash-after-cell=K[,torn-tail=B],sigkill-after-ms=T,"
      "fail-flush-at=J — any subset, comma separated)");
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) bad_spec(spec, "empty clause");
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      bad_spec(spec, "clause '" + item + "' has no '='");
    const std::string key = item.substr(0, eq);
    const std::string raw = item.substr(eq + 1);
    const std::optional<std::uint64_t> value = parse_u64(raw);
    if (!value)
      bad_spec(spec, "clause '" + item + "' needs a non-negative integer");
    if (key == "crash-after-cell") {
      plan.crash_after_cell = *value;
    } else if (key == "torn-tail") {
      plan.torn_tail_bytes = *value;
    } else if (key == "sigkill-after-ms") {
      plan.sigkill_after_ms = *value;
    } else if (key == "fail-flush-at") {
      if (*value == 0) bad_spec(spec, "fail-flush-at counts flushes from 1");
      plan.fail_flush_at = *value;
    } else {
      bad_spec(spec, "unknown fault '" + key + "'");
    }
  }
  if (plan.torn_tail_bytes > 0 && !plan.crash_after_cell)
    bad_spec(spec, "torn-tail needs crash-after-cell (it tears at the crash)");
  return plan;
}

std::string to_string(const FaultPlan& plan) {
  std::string out;
  const auto add = [&](const char* key, std::uint64_t v) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += std::to_string(v);
  };
  if (plan.crash_after_cell) add("crash-after-cell", *plan.crash_after_cell);
  if (plan.torn_tail_bytes > 0) add("torn-tail", plan.torn_tail_bytes);
  if (plan.sigkill_after_ms) add("sigkill-after-ms", *plan.sigkill_after_ms);
  if (plan.fail_flush_at) add("fail-flush-at", *plan.fail_flush_at);
  return out;
}

void FaultInjector::arm_sigkill() {
  if (!plan_.sigkill_after_ms) return;
  // Detached on purpose: SIGKILL is not unwound, so there is no teardown
  // for the thread to outlive. raise(2) of SIGKILL cannot be blocked or
  // handled — the closest a simulation gets to a node dying mid-write.
  std::thread([ms = *plan_.sigkill_after_ms] {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    ::kill(::getpid(), SIGKILL);
  }).detach();
}

void FaultInjector::set_active_files(std::vector<std::string> files) {
  files_ = std::move(files);
}

void FaultInjector::on_sinks_open() {
  if (plan_.crash_after_cell && *plan_.crash_after_cell == 0) crash_now();
}

void FaultInjector::on_cell_complete() {
  const std::uint64_t n = cells_.fetch_add(1) + 1;
  if (plan_.crash_after_cell && n == *plan_.crash_after_cell) crash_now();
}

void FaultInjector::on_sink_flush(const char* kind) {
  const std::uint64_t n = flushes_.fetch_add(1) + 1;
  if (plan_.fail_flush_at && n == *plan_.fail_flush_at)
    throw std::runtime_error("fault injection: sink flush " +
                             std::to_string(n) + " (" + kind +
                             ") failed by plan");
}

void FaultInjector::crash_now() {
  // Sinks flush per cell, so every registered file's bytes are in the OS
  // by the time a crash point fires; resize_file after the fact models the
  // torn final line a mid-write kill leaves on disk.
  for (const std::string& path : files_) {
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec) continue;  // never written — nothing to tear
    const std::uintmax_t keep =
        size > plan_.torn_tail_bytes ? size - plan_.torn_tail_bytes : 0;
    std::filesystem::resize_file(path, keep, ec);
  }
  // _Exit, not abort(): no atexit handlers, no stream teardown — buffered
  // state dies with the process exactly like a real crash.
  std::_Exit(kFaultCrashExitCode);
}

}  // namespace mtr::dist
