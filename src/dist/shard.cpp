#include "dist/shard.hpp"

#include <stdexcept>

#include "dist/records.hpp"

namespace mtr::dist {

ShardSpec parse_shard_spec(const std::string& spec) {
  const auto fail = [&]() -> ShardSpec {
    throw std::runtime_error("bad shard spec '" + spec +
                             "' — expected I/N with 0 <= I < N, e.g. 0/3");
  };
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos) return fail();
  const auto index = parse_u64(spec.substr(0, slash));
  const auto count = parse_u64(spec.substr(slash + 1));
  if (!index || !count) return fail();
  ShardSpec s;
  s.index = *index;
  s.count = *count;
  if (s.count == 0 || s.index >= s.count) return fail();
  return s;
}

std::string to_string(const ShardSpec& spec) {
  return std::to_string(spec.index) + "/" + std::to_string(spec.count);
}

}  // namespace mtr::dist
