#include "dist/inspect.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/parse.hpp"
#include "common/stats.hpp"
#include "dist/json.hpp"
#include "dist/records.hpp"
#include "dist/status.hpp"
#include "trace/series.hpp"

namespace mtr::dist {
namespace {

constexpr const char* kUsage = R"(usage: mtr_inspect MODE [options]

modes (exactly one):
  --metrics FILE   render a metrics.json report: kernel counters, phase
                   timers, quantile tables (p50/p90/p99/p999) and ASCII
                   sparklines of the telemetry series
  --trace FILE     summarize a Perfetto trace JSON: event census, counter
                   tracks, categories, schema stamp
  --jsonl FILE     rank the cells of a result JSONL by billing gap
                   (mean billed minus true seconds)
  --compare A B    diff two metrics files; prints per-counter deltas plus
                   side-by-side A/B sparklines of every gauge series with
                   a delta row, and exits 1 when any counter-class value
                   differs (timing-class values -- wall clocks, phases,
                   pool, the cell_seconds sketch -- are reported, never
                   fatal)
  --status-file F  render a mtr_sweep --status-file heartbeat: sweep,
                   cells done/total, elapsed, ETA, worker busy fractions,
                   heartbeat age; exits 1 when the heartbeat is stale

options:
  --top N          with --jsonl: how many cells to print (default 10)
  --stale-after S  with --status-file: seconds of heartbeat age that count
                   as stale (default 30, the same threshold the mtr_fleet
                   supervisor kills hung shards on)
  --help           this text
)";

[[noreturn]] void usage_error(const std::string& message) {
  throw std::runtime_error(message + "\n\n" + kUsage);
}

/// Compact %g for report tables; doubles in metrics files are exact
/// %.17g round-trips, but the report is for eyes, not diffing.
std::string fmt6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Exact rendering for --compare: a delta of 1 ulp must be visible.
std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    throw std::runtime_error("cannot read " + path);
  return std::move(buf).str();
}

void flatten_sketch(const char* name, const QuantileSketch& s, bool counter,
                    FlatMetrics& out) {
  auto& dst = counter ? out.counters : out.timings;
  const std::string base = std::string("sketches.") + name + ".";
  dst.emplace_back(base + "count", static_cast<double>(s.count()));
  dst.emplace_back(base + "zero", static_cast<double>(s.zero_count()));
  dst.emplace_back(base + "min", s.min());
  dst.emplace_back(base + "max", s.max());
  dst.emplace_back(base + "p50", s.quantile(0.50));
  dst.emplace_back(base + "p90", s.quantile(0.90));
  dst.emplace_back(base + "p99", s.quantile(0.99));
  dst.emplace_back(base + "p999", s.quantile(0.999));
}

}  // namespace

FlatMetrics flatten_metrics(const trace::SweepMetrics& m) {
  FlatMetrics out;
  out.counters.emplace_back("cells", static_cast<double>(m.cells));
  out.counters.emplace_back("runs", static_cast<double>(m.runs));
  m.kernel.for_each([&](const char* name, std::uint64_t v) {
    out.counters.emplace_back(std::string("kernel.") + name,
                              static_cast<double>(v));
  });
  m.telemetry.for_each_series([&](const char* name, const trace::TimeSeries& s) {
    const std::string base = std::string("series.") + name + ".";
    std::int64_t lo = 0, hi = 0, sum = 0;
    bool any = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const trace::SeriesBucket& b = s.bucket(i);
      if (b.count == 0) continue;
      lo = any ? std::min(lo, b.min) : b.min;
      hi = any ? std::max(hi, b.max) : b.max;
      sum += b.sum;
      any = true;
    }
    out.counters.emplace_back(base + "samples",
                              static_cast<double>(s.samples()));
    out.counters.emplace_back(base + "width", static_cast<double>(s.width()));
    out.counters.emplace_back(base + "min", static_cast<double>(lo));
    out.counters.emplace_back(base + "max", static_cast<double>(hi));
    out.counters.emplace_back(base + "sum", static_cast<double>(sum));
  });
  // cell_seconds holds wall-clock values: timing-class by construction.
  m.telemetry.for_each_sketch([&](const char* name, const QuantileSketch& s) {
    flatten_sketch(name, s, std::string_view(name) != "cell_seconds", out);
  });

  out.timings.emplace_back("cell_wall_seconds", m.cell_wall_seconds);
  out.timings.emplace_back("max_cell_seconds", m.max_cell_seconds);
  for (const trace::MetricEntry& e : m.phases.entries()) {
    out.timings.emplace_back("phases." + e.name + ".count",
                             static_cast<double>(e.count));
    out.timings.emplace_back("phases." + e.name + ".seconds", e.seconds);
  }
  out.timings.emplace_back("pool.threads", static_cast<double>(m.pool.threads));
  out.timings.emplace_back("pool.wall_seconds", m.pool.wall_seconds);
  for (std::size_t i = 0; i < m.pool.busy_seconds.size(); ++i)
    out.timings.emplace_back("pool.busy_seconds." + std::to_string(i),
                             m.pool.busy_seconds[i]);
  return out;
}

std::string render_sparkline(const trace::TimeSeries& s) {
  static constexpr char kRamp[] = " .:-=+*#%@";  // 10 levels, [0] unused
  std::string line;
  if (s.empty()) return line;
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const trace::SeriesBucket& b = s.bucket(i);
    if (b.count == 0) continue;
    const double avg =
        static_cast<double>(b.sum) / static_cast<double>(b.count);
    lo = any ? std::min(lo, avg) : avg;
    hi = any ? std::max(hi, avg) : avg;
    any = true;
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    const trace::SeriesBucket& b = s.bucket(i);
    if (b.count == 0) {
      line += ' ';
      continue;
    }
    if (hi == lo) {
      line += '=';  // flat series: any level is as honest as another
      continue;
    }
    const double avg =
        static_cast<double>(b.sum) / static_cast<double>(b.count);
    const double t = (avg - lo) / (hi - lo);
    const int level = 1 + static_cast<int>(t * 8.0 + 0.5);
    line += kRamp[std::clamp(level, 1, 9)];
  }
  return line;
}

void render_metrics_report(std::ostream& out, const MetricsFile& f) {
  out << "metrics: schema " << f.schema << ", " << f.shards << " shard(s), "
      << f.sweeps.size() << " sweep(s)\n";
  for (const trace::SweepMetrics& m : f.sweeps) {
    out << "\nsweep " << m.sweep << ": cells " << m.cells << ", runs "
        << m.runs << ", cell-wall " << fmt6(m.cell_wall_seconds)
        << "s (max cell " << fmt6(m.max_cell_seconds) << "s)\n";
    out << "  kernel counters:\n";
    m.kernel.for_each([&](const char* name, std::uint64_t v) {
      out << "    " << std::left << std::setw(22) << name << std::right << " "
          << v << "\n";
    });
    if (!m.phases.entries().empty()) {
      out << "  phases:\n";
      for (const trace::MetricEntry& e : m.phases.entries())
        out << "    " << std::left << std::setw(22) << e.name << std::right
            << " n=" << e.count << " " << fmt6(e.seconds) << "s\n";
    }
    if (m.pool.threads > 0) {
      out << "  pool: threads " << m.pool.threads << ", wall "
          << fmt6(m.pool.wall_seconds) << "s, busy";
      for (const double b : m.pool.busy_seconds) out << " " << fmt6(b);
      out << "\n";
    }
    out << "  sketches:\n    " << std::left << std::setw(14) << "name"
        << std::right << std::setw(8) << "count" << std::setw(13) << "min"
        << std::setw(13) << "p50" << std::setw(13) << "p90" << std::setw(13)
        << "p99" << std::setw(13) << "p999" << std::setw(13) << "max" << "\n";
    m.telemetry.for_each_sketch([&](const char* name,
                                    const QuantileSketch& s) {
      out << "    " << std::left << std::setw(14) << name << std::right;
      if (s.empty()) {
        out << std::setw(8) << 0 << "  (empty)\n";
        return;
      }
      out << std::setw(8) << s.count() << std::setw(13) << fmt6(s.min())
          << std::setw(13) << fmt6(s.quantile(0.50)) << std::setw(13)
          << fmt6(s.quantile(0.90)) << std::setw(13) << fmt6(s.quantile(0.99))
          << std::setw(13) << fmt6(s.quantile(0.999)) << std::setw(13)
          << fmt6(s.max()) << "\n";
    });
    out << "  series (bucket width in cycles; sparkline of bucket means):\n";
    m.telemetry.for_each_series([&](const char* name,
                                    const trace::TimeSeries& s) {
      out << "    " << std::left << std::setw(14) << name << std::right;
      if (s.empty()) {
        out << " (empty)\n";
        return;
      }
      std::int64_t lo = 0, hi = 0;
      bool any = false;
      for (std::size_t i = 0; i < s.size(); ++i) {
        const trace::SeriesBucket& b = s.bucket(i);
        if (b.count == 0) continue;
        lo = any ? std::min(lo, b.min) : b.min;
        hi = any ? std::max(hi, b.max) : b.max;
        any = true;
      }
      out << " " << s.samples() << " samples @" << s.width() << "  |"
          << render_sparkline(s) << "|  min " << lo << " max " << hi << "\n";
    });
  }
}

namespace {

// ---------------------------------------------------------------- compare

/// Ordered name -> value view of one flat list; first-file order wins in
/// the report, lookups go through the map.
std::map<std::string, double> by_name(const std::vector<FlatMetric>& v) {
  std::map<std::string, double> m;
  for (const FlatMetric& f : v) m.emplace(f.first, f.second);
  return m;
}

/// Diffs one class of metrics; prints every differing entry (and entries
/// present on only one side) as "label name: A -> B". Returns the number
/// of differences.
std::uint64_t diff_class(std::ostream& out, const char* label,
                         const std::vector<FlatMetric>& a,
                         const std::vector<FlatMetric>& b) {
  const std::map<std::string, double> bm = by_name(b);
  const std::map<std::string, double> am = by_name(a);
  std::uint64_t deltas = 0;
  for (const FlatMetric& fa : a) {
    const auto it = bm.find(fa.first);
    if (it == bm.end()) {
      out << "  " << label << " " << fa.first << ": " << fmt17(fa.second)
          << " -> (missing)\n";
      ++deltas;
    } else if (it->second != fa.second) {
      out << "  " << label << " " << fa.first << ": " << fmt17(fa.second)
          << " -> " << fmt17(it->second) << " (delta "
          << fmt17(it->second - fa.second) << ")\n";
      ++deltas;
    }
  }
  for (const FlatMetric& fb : b) {
    if (am.find(fb.first) != am.end()) continue;
    out << "  " << label << " " << fb.first << ": (missing) -> "
        << fmt17(fb.second) << "\n";
    ++deltas;
  }
  return deltas;
}

const trace::SweepMetrics* find_sweep(const MetricsFile& f,
                                      const std::string& name) {
  for (const trace::SweepMetrics& m : f.sweeps)
    if (m.sweep == name) return &m;
  return nullptr;
}

/// Mean of one series bucket, or nullopt when the bucket holds no samples
/// (or lies past the series' end — the shorter side of a length mismatch).
std::optional<double> bucket_mean(const trace::TimeSeries& s, std::size_t i) {
  if (i >= s.size() || s.bucket(i).count == 0) return std::nullopt;
  const trace::SeriesBucket& b = s.bucket(i);
  return static_cast<double>(b.sum) / static_cast<double>(b.count);
}

/// Side-by-side gauge-series sparklines for the two files, one block per
/// series, with a delta row underneath: ' ' where the bucket means agree,
/// '+' where B runs above A, '-' where it runs below, '!' where only one
/// side has samples. Informational only — the series aggregates already
/// compare in the counter class; this shows WHERE along the timeline two
/// runs diverge, not just that they do.
void render_series_comparison(std::ostream& out, const trace::SweepMetrics& ma,
                              const trace::SweepMetrics& mb) {
  std::vector<std::pair<const char*, const trace::TimeSeries*>> sa, sb;
  ma.telemetry.for_each_series(
      [&](const char* n, const trace::TimeSeries& s) { sa.emplace_back(n, &s); });
  mb.telemetry.for_each_series(
      [&](const char* n, const trace::TimeSeries& s) { sb.emplace_back(n, &s); });
  for (std::size_t k = 0; k < sa.size() && k < sb.size(); ++k) {
    const trace::TimeSeries& a = *sa[k].second;
    const trace::TimeSeries& b = *sb[k].second;
    if (a.empty() && b.empty()) continue;
    out << "  series " << sa[k].first << " (A " << a.samples() << " samples @"
        << a.width() << ", B " << b.samples() << " samples @" << b.width()
        << "):\n";
    out << "    A     |" << render_sparkline(a) << "|\n";
    out << "    B     |" << render_sparkline(b) << "|\n";
    std::string delta;
    std::uint64_t differing = 0;
    double max_gap = 0.0;
    for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
      const std::optional<double> va = bucket_mean(a, i);
      const std::optional<double> vb = bucket_mean(b, i);
      if (!va && !vb) {
        delta += ' ';
      } else if (!va || !vb) {
        delta += '!';
        ++differing;
      } else if (*va == *vb) {
        delta += ' ';
      } else {
        delta += *vb > *va ? '+' : '-';
        max_gap = std::max(max_gap, std::abs(*vb - *va));
        ++differing;
      }
    }
    out << "    delta |" << delta << "|  ";
    if (differing == 0)
      out << "bucket means identical\n";
    else
      out << differing << " bucket(s) differ, max |mean delta| "
          << fmt6(max_gap) << "\n";
  }
}

// ------------------------------------------------------------ trace mode

int run_trace_summary(const InspectOptions& options, std::ostream& out) {
  const json::Value doc = [&] {
    try {
      return json::parse_document(read_file(options.trace_path));
    } catch (const std::exception& e) {
      throw std::runtime_error(options.trace_path + ": " + e.what());
    }
  }();
  const json::Value& other = json::get_object(doc, "otherData");
  const json::Value& events = json::get_array(doc, "traceEvents");

  std::uint64_t spans = 0, instants = 0, counters = 0, unknown = 0;
  std::map<std::string, std::uint64_t> counter_tracks;
  std::map<std::string, std::uint64_t> categories;
  for (const json::Value& ev : events.items) {
    const std::string ph = json::get_string(ev, "ph");
    if (ph == "X") {
      ++spans;
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "C") {
      ++counters;
      ++counter_tracks[json::get_string(ev, "name")];
    } else {
      ++unknown;
    }
    if (const json::Value* cat = ev.find("cat"))
      ++categories[cat->kind == json::Value::Kind::kString ? cat->text : ""];
  }

  const std::uint64_t recorded = json::get_u64(other, "recorded");
  const std::uint64_t dropped = json::get_u64(other, "dropped");
  out << "trace " << options.trace_path << ": schema \""
      << json::get_string(other, "schema") << "\", recorded " << recorded
      << ", dropped " << dropped << ", cpu_hz "
      << json::get_u64(other, "cpu_hz") << ", timer_hz "
      << json::get_u64(other, "timer_hz") << "\n";
  out << "  events: " << events.items.size() << " total -- " << spans
      << " spans (X), " << instants << " instants (i), " << counters
      << " counter samples (C)";
  if (unknown > 0) out << ", " << unknown << " other";
  out << "\n";
  // Spans + instants must cover every surviving recorded event plus the
  // terminator instant; counter tracks ride on top of that budget.
  const std::uint64_t expect = recorded - dropped + 1;
  if (spans + instants == expect)
    out << "  event budget: spans + instants == recorded - dropped + 1\n";
  else
    out << "  event budget MISMATCH: spans + instants = " << spans + instants
        << ", recorded - dropped + 1 = " << expect << "\n";
  if (!counter_tracks.empty()) {
    out << "  counter tracks:\n";
    for (const auto& [name, n] : counter_tracks)
      out << "    " << std::left << std::setw(24) << name << std::right << " "
          << n << " sample(s)\n";
  }
  if (!categories.empty()) {
    out << "  categories:\n";
    for (const auto& [name, n] : categories)
      out << "    " << std::left << std::setw(24) << name << std::right << " "
          << n << " event(s)\n";
  }
  return 0;
}

// ------------------------------------------------------------ jsonl mode

struct CellGap {
  std::string sweep;
  std::uint64_t cell_index = 0;
  std::string attack;
  std::string scheduler;
  std::uint64_t hz = 0;
  double billed = 0.0;
  double true_s = 0.0;
  double overcharge = 0.0;
  double gap = 0.0;
};

/// The per-stat tokens are nested one-line objects; re-parse them through
/// the strict JSON reader to pull the mean.
double stat_mean(const std::map<std::string, std::string>& fields,
                 const std::string& key, const std::string& where) {
  const auto it = fields.find(key);
  if (it == fields.end())
    throw std::runtime_error(where + ": cell record missing '" + key + "'");
  try {
    return json::get_f64(json::parse_document(it->second), "mean");
  } catch (const std::exception& e) {
    throw std::runtime_error(where + ": bad '" + key + "': " + e.what());
  }
}

int run_top_cells(const InspectOptions& options, std::ostream& out) {
  const FileScan scan = scan_jsonl(options.jsonl_path);
  if (!scan.clean)
    out << "note: " << scan.tail_error << " (partial tail ignored)\n";
  std::vector<CellGap> cells;
  for (const CellBlock& b : scan.blocks) {
    if (!b.closed || b.cell_line.empty()) continue;
    std::map<std::string, std::string> f;
    const std::string where =
        options.jsonl_path + " cell " + std::to_string(b.cell_index);
    if (!parse_json_line(b.cell_line, f))
      throw std::runtime_error(where + ": unparseable cell record");
    CellGap c;
    c.sweep = b.sweep;
    c.cell_index = b.cell_index;
    c.attack = b.attack;
    c.scheduler = b.scheduler;
    c.hz = b.hz;
    c.billed = stat_mean(f, "billed_seconds", where);
    c.true_s = stat_mean(f, "true_seconds", where);
    c.overcharge = stat_mean(f, "overcharge", where);
    c.gap = c.billed - c.true_s;
    cells.push_back(std::move(c));
  }
  std::sort(cells.begin(), cells.end(), [](const CellGap& a, const CellGap& b) {
    if (a.gap != b.gap) return a.gap > b.gap;
    if (a.sweep != b.sweep) return a.sweep < b.sweep;
    return a.cell_index < b.cell_index;
  });
  const std::size_t n =
      std::min<std::size_t>(cells.size(), static_cast<std::size_t>(options.top));
  out << "top " << n << " of " << cells.size()
      << " cell(s) by billing gap (mean billed - true seconds):\n";
  out << "  " << std::right << std::setw(12) << "gap" << std::setw(12)
      << "billed" << std::setw(12) << "true" << std::setw(12) << "overchg"
      << "  cell\n";
  for (std::size_t i = 0; i < n; ++i) {
    const CellGap& c = cells[i];
    out << "  " << std::setw(12) << fmt6(c.gap) << std::setw(12)
        << fmt6(c.billed) << std::setw(12) << fmt6(c.true_s) << std::setw(12)
        << fmt6(c.overcharge) << "  " << c.sweep << "#" << c.cell_index
        << " attack=" << c.attack << " sched=" << c.scheduler
        << " hz=" << c.hz << "\n";
  }
  return 0;
}

int run_status_report(const InspectOptions& options, std::ostream& out) {
  // A shard that died before its first heartbeat (or whose status file was
  // cleaned up) looks exactly like a stale one to a monitor: report STALE
  // and exit 1 rather than erroring, so polling scripts need one code path.
  if (!std::filesystem::exists(options.status_path)) {
    out << "heartbeat: " << options.status_path
        << " does not exist -- STALE\n";
    return 1;
  }
  const StatusSnapshot s = read_status_file(options.status_path);
  out << "status: sweep " << s.sweep << ", cell " << s.cells_done << "/"
      << s.cells_total << ", elapsed " << fmt6(s.elapsed_seconds) << "s";
  if (s.eta_seconds) out << ", eta " << fmt6(*s.eta_seconds) << "s";
  out << "\n";
  if (!s.worker_busy_fraction.empty()) {
    out << "workers:";
    for (const double f : s.worker_busy_fraction)
      out << " " << fmt6(f * 100.0) << "%";
    out << "\n";
  }
  const double threshold =
      options.stale_after > 0.0 ? options.stale_after : kDefaultStaleAfterSeconds;
  const std::optional<double> age = status_file_age_seconds(options.status_path);
  if (!age) {
    // read_status_file succeeded moments ago, so only a racing delete
    // lands here; treat it like a stale heartbeat.
    out << "heartbeat: file vanished -- STALE\n";
    return 1;
  }
  const bool stale = heartbeat_stale(*age, threshold);
  out << "heartbeat: " << fmt6(*age) << "s old (stale after "
      << fmt6(threshold) << "s) -- " << (stale ? "STALE" : "alive") << "\n";
  return stale ? 1 : 0;
}

}  // namespace

int compare_metrics(std::ostream& out, const std::string& name_a,
                    const MetricsFile& a, const std::string& name_b,
                    const MetricsFile& b) {
  out << "comparing " << name_a << " (schema " << a.schema << ", "
      << a.shards << " shard(s)) vs " << name_b << " (schema " << b.schema
      << ", " << b.shards << " shard(s)); shard counts are not compared\n";
  std::uint64_t counter_deltas = 0, timing_deltas = 0, compared = 0;

  std::vector<const trace::SweepMetrics*> order;
  for (const trace::SweepMetrics& m : a.sweeps) order.push_back(&m);
  for (const trace::SweepMetrics& m : b.sweeps)
    if (find_sweep(a, m.sweep) == nullptr) order.push_back(&m);

  for (const trace::SweepMetrics* m : order) {
    const trace::SweepMetrics* ma = find_sweep(a, m->sweep);
    const trace::SweepMetrics* mb = find_sweep(b, m->sweep);
    out << "sweep " << m->sweep << ":\n";
    if (ma == nullptr || mb == nullptr) {
      out << "  only in " << (ma != nullptr ? name_a : name_b) << "\n";
      ++counter_deltas;
      continue;
    }
    const FlatMetrics fa = flatten_metrics(*ma);
    const FlatMetrics fb = flatten_metrics(*mb);
    compared += fa.counters.size();
    const std::uint64_t c = diff_class(out, "counter", fa.counters, fb.counters);
    if (c == 0)
      out << "  counters: identical (" << fa.counters.size() << " compared)\n";
    counter_deltas += c;
    timing_deltas += diff_class(out, "timing", fa.timings, fb.timings);
    render_series_comparison(out, *ma, *mb);
  }
  out << "summary: " << counter_deltas << " counter delta(s), "
      << timing_deltas << " timing delta(s) across " << order.size()
      << " sweep(s)";
  if (counter_deltas == 0) out << " -- counters identical";
  out << "\n";
  return counter_deltas == 0 ? 0 : 1;
}

InspectOptions parse_inspect_args(int argc, const char* const* argv) {
  InspectOptions o;
  const auto value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) usage_error("missing value for " + flag);
    return argv[++i];
  };
  bool top_set = false;
  bool stale_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") o.help = true;
    else if (arg == "--metrics") o.metrics_path = value(i, arg);
    else if (arg == "--trace") o.trace_path = value(i, arg);
    else if (arg == "--jsonl") o.jsonl_path = value(i, arg);
    else if (arg == "--status-file") o.status_path = value(i, arg);
    else if (arg == "--compare") {
      o.compare.push_back(value(i, arg));
      o.compare.push_back(value(i, arg));
    } else if (arg == "--top") {
      const std::string v = value(i, arg);
      const std::optional<std::uint64_t> n = parse_u64(v);
      if (!n || *n == 0) usage_error("--top expects a positive integer, got '" + v + "'");
      o.top = *n;
      top_set = true;
    } else if (arg == "--stale-after") {
      const std::string v = value(i, arg);
      const std::optional<double> s = parse_f64(v);
      if (!s || *s <= 0.0)
        usage_error("--stale-after expects a positive number of seconds, "
                    "got '" + v + "'");
      o.stale_after = *s;
      stale_set = true;
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  if (o.help) return o;
  const int modes = (o.metrics_path.empty() ? 0 : 1) +
                    (o.trace_path.empty() ? 0 : 1) +
                    (o.jsonl_path.empty() ? 0 : 1) + (o.compare.empty() ? 0 : 1) +
                    (o.status_path.empty() ? 0 : 1);
  if (modes != 1)
    usage_error(modes == 0 ? "no mode selected"
                           : "more than one mode selected");
  if (top_set && o.jsonl_path.empty())
    usage_error("--top only applies to --jsonl");
  if (stale_set && o.status_path.empty())
    usage_error("--stale-after only applies to --status-file");
  return o;
}

int run_inspect(const InspectOptions& options, std::ostream& out) {
  if (options.help) {
    out << kUsage;
    return 0;
  }
  if (!options.metrics_path.empty()) {
    render_metrics_report(out, read_metrics_json(options.metrics_path));
    return 0;
  }
  if (!options.trace_path.empty()) return run_trace_summary(options, out);
  if (!options.jsonl_path.empty()) return run_top_cells(options, out);
  if (!options.status_path.empty()) return run_status_report(options, out);
  return compare_metrics(out, options.compare[0],
                         read_metrics_json(options.compare[0]),
                         options.compare[1],
                         read_metrics_json(options.compare[1]));
}

int inspect_main(int argc, const char* const* argv) {
  try {
    return run_inspect(parse_inspect_args(argc, argv), std::cout);
  } catch (const std::exception& e) {
    std::cerr << "mtr_inspect: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace mtr::dist
