#include "dist/records.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "report/result_sink.hpp"

namespace mtr::dist {

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  try {
    return std::stoull(s);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

namespace {

/// Index past the closing quote of the string starting at `from` (which
/// must point at the opening quote), honouring backslash escapes; npos when
/// the string never closes (truncated line).
std::size_t skip_json_string(const std::string& line, std::size_t from) {
  for (std::size_t j = from + 1; j < line.size(); ++j) {
    if (line[j] == '\\') {
      ++j;
    } else if (line[j] == '"') {
      return j + 1;
    }
  }
  return std::string::npos;
}

std::string json_unescape(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '\\' || i + 1 >= token.size()) {
      out += token[i];
      continue;
    }
    const char esc = token[++i];
    switch (esc) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        // Our writer only emits \u00XX for control characters.
        if (i + 4 < token.size()) {
          out += static_cast<char>(
              std::strtoul(std::string(token.substr(i + 1, 4)).c_str(), nullptr, 16));
          i += 4;
        }
        break;
      default: out += esc; break;
    }
  }
  return out;
}

}  // namespace

bool parse_json_line(const std::string& line,
                     std::map<std::string, std::string>& out) {
  out.clear();
  if (line.empty() || line.front() != '{') return false;
  std::size_t i = 1;
  if (i < line.size() && line[i] == '}') return i + 1 == line.size();
  for (;;) {
    if (i >= line.size() || line[i] != '"') return false;
    const std::size_t key_end = skip_json_string(line, i);
    if (key_end == std::string::npos) return false;
    const std::string key = line.substr(i + 1, key_end - i - 2);
    i = key_end;
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    const std::size_t val_start = i;
    if (i < line.size() && line[i] == '"') {
      i = skip_json_string(line, i);
      if (i == std::string::npos) return false;
    } else if (i < line.size() && line[i] == '{') {
      // One level of nesting (the per-stat {...} objects), strings inside
      // respected.
      int depth = 1;
      ++i;
      while (i < line.size() && depth > 0) {
        if (line[i] == '"') {
          i = skip_json_string(line, i);
          if (i == std::string::npos) return false;
        } else {
          if (line[i] == '{') ++depth;
          if (line[i] == '}') --depth;
          ++i;
        }
      }
      if (depth != 0) return false;
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      if (i == val_start) return false;
    }
    out[key] = line.substr(val_start, i - val_start);
    if (i >= line.size()) return false;
    if (line[i] == '}') return i + 1 == line.size();
    if (line[i] != ',') return false;
    ++i;
  }
}

std::optional<std::string> json_string(
    const std::map<std::string, std::string>& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.size() < 2 || it->second.front() != '"' ||
      it->second.back() != '"')
    return std::nullopt;
  return json_unescape(
      std::string_view(it->second).substr(1, it->second.size() - 2));
}

std::optional<std::uint64_t> json_u64(
    const std::map<std::string, std::string>& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  return parse_u64(it->second);
}

std::optional<double> json_double(
    const std::map<std::string, std::string>& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end != it->second.c_str() + it->second.size()) return std::nullopt;
  return v;
}

std::optional<bool> json_bool(const std::map<std::string, std::string>& fields,
                              const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  if (it->second == "true") return true;
  if (it->second == "false") return false;
  return std::nullopt;
}

const std::vector<std::string>& cell_stat_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> k;
    core::CellStats cell;
    cell.for_each_stat(
        [&](const char* name, const RunningStats&, auto) { k.emplace_back(name); });
    return k;
  }();
  return keys;
}

namespace {

[[noreturn]] void schema_error(const std::string& path, std::uint64_t found) {
  throw std::runtime_error(
      path + ": record schema version " + std::to_string(found) +
      " does not match this build's " + std::to_string(report::kSchemaVersion) +
      " — refusing to mix schema versions");
}

}  // namespace

FileScan scan_jsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("cannot open " + path);

  FileScan scan;
  CellBlock open;
  bool has_open = false;
  std::uint64_t offset = 0;
  std::string line;
  const auto stop = [&](std::string why) {
    scan.clean = false;
    scan.tail_error = std::move(why);
  };

  while (std::getline(in, line)) {
    if (in.eof()) {
      // The last line had no trailing newline: a mid-write kill.
      stop("truncated final line");
      break;
    }
    const std::uint64_t line_end = offset + line.size() + 1;

    std::map<std::string, std::string> f;
    if (!parse_json_line(line, f)) {
      stop("unparseable record at byte " + std::to_string(offset));
      break;
    }
    const auto record = json_string(f, "record");
    const auto schema = json_u64(f, "schema");
    if (!record || !schema) {
      stop("record without type/schema at byte " + std::to_string(offset));
      break;
    }
    if (*schema != report::kSchemaVersion) schema_error(path, *schema);
    const auto sweep = json_string(f, "sweep");
    const auto cell_index = json_u64(f, "cell_index");
    const auto attack = json_string(f, "attack");
    const auto scheduler = json_string(f, "scheduler");
    const auto hz = json_u64(f, "hz");
    if (!sweep || !cell_index || !attack || !scheduler || !hz) {
      stop("record missing cell coordinates at byte " + std::to_string(offset));
      break;
    }

    if (*record == "run") {
      const auto seed = json_u64(f, "seed");
      const auto seed_index = json_u64(f, "seed_index");
      if (!seed || !seed_index) {
        stop("run record missing seed/seed_index at byte " + std::to_string(offset));
        break;
      }
      if (!has_open) {
        if (*seed_index != 0) {
          stop("run records of cell " + std::to_string(*cell_index) +
               " start mid-cell");
          break;
        }
        open = CellBlock{};
        open.cell_index = *cell_index;
        open.sweep = *sweep;
        open.attack = *attack;
        open.scheduler = *scheduler;
        open.hz = *hz;
        has_open = true;
      } else if (open.cell_index != *cell_index || open.sweep != *sweep ||
                 open.attack != *attack || open.scheduler != *scheduler ||
                 open.hz != *hz) {
        stop("cell " + std::to_string(open.cell_index) +
             " has run records but no summary");
        break;
      } else if (*seed_index != open.seeds.size()) {
        stop("seed_index discontinuity in cell " + std::to_string(*cell_index));
        break;
      }
      open.seeds.push_back(*seed);
      open.run_lines.push_back(line);
    } else if (*record == "cell") {
      const auto n = json_u64(f, "seeds");
      if (!has_open || open.cell_index != *cell_index || open.sweep != *sweep ||
          open.attack != *attack || open.scheduler != *scheduler ||
          open.hz != *hz) {
        stop("cell summary for cell " + std::to_string(*cell_index) +
             " without its run records");
        break;
      }
      if (!n || *n != open.seeds.size()) {
        stop("cell " + std::to_string(*cell_index) +
             " summary seed count disagrees with its run records");
        break;
      }
      open.cell_line = line;
      open.closed = true;
      open.end_offset = line_end;
      scan.valid_bytes = line_end;
      scan.blocks.push_back(std::move(open));
      open = CellBlock{};
      has_open = false;
    } else {
      stop("unknown record type '" + *record + "'");
      break;
    }
    offset = line_end;
  }

  if (scan.clean && has_open)
    stop("incomplete cell " + std::to_string(open.cell_index) +
         " at end of file (runs without a summary)");
  return scan;
}

FileScan scan_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("cannot open " + path);

  FileScan scan;
  std::string line;
  if (!std::getline(in, line)) return scan;  // empty file: nothing done yet
  if (in.eof()) {
    scan.clean = false;
    scan.tail_error = "truncated header row";
    return scan;
  }
  const std::vector<std::string> header = report::split_csv_line(line);
  const std::vector<std::string> canonical = report::run_schema_keys();
  if (header != canonical)
    throw std::runtime_error(
        path + ": CSV header does not match this build's schema (version " +
        std::to_string(report::kSchemaVersion) +
        ") — refusing to mix schema versions");
  const auto col = [&](const char* key) {
    for (std::size_t i = 0; i < header.size(); ++i)
      if (header[i] == key) return i;
    throw std::runtime_error(std::string("missing CSV column ") + key);
  };
  const std::size_t c_schema = col("schema"), c_sweep = col("sweep"),
                    c_cell = col("cell_index"), c_attack = col("attack"),
                    c_sched = col("scheduler"), c_hz = col("hz"),
                    c_seed = col("seed"), c_seed_i = col("seed_index");

  std::uint64_t offset = line.size() + 1;
  scan.valid_bytes = offset;
  scan.header_bytes = offset;
  CellBlock open;
  bool has_open = false;
  const auto stop = [&](std::string why) {
    scan.clean = false;
    scan.tail_error = std::move(why);
  };

  while (std::getline(in, line)) {
    if (in.eof()) {
      stop("truncated final row");
      break;
    }
    const std::uint64_t line_end = offset + line.size() + 1;
    const std::vector<std::string> row = report::split_csv_line(line);
    if (row.size() != header.size()) {
      stop("malformed row at byte " + std::to_string(offset));
      break;
    }
    const auto schema = parse_u64(row[c_schema]);
    if (!schema) {
      stop("bad schema value at byte " + std::to_string(offset));
      break;
    }
    if (*schema != report::kSchemaVersion) schema_error(path, *schema);
    const auto cell_index = parse_u64(row[c_cell]);
    const auto hz = parse_u64(row[c_hz]);
    const auto seed = parse_u64(row[c_seed]);
    const auto seed_index = parse_u64(row[c_seed_i]);
    if (!cell_index || !hz || !seed || !seed_index) {
      stop("bad numeric cell coordinates at byte " + std::to_string(offset));
      break;
    }

    if (has_open && open.cell_index == *cell_index) {
      if (open.sweep != row[c_sweep] || open.attack != row[c_attack] ||
          open.scheduler != row[c_sched] || open.hz != *hz) {
        stop("conflicting coordinates within cell " + std::to_string(*cell_index));
        break;
      }
      if (*seed_index != open.seeds.size()) {
        stop("seed_index discontinuity in cell " + std::to_string(*cell_index));
        break;
      }
    } else {
      if (has_open) {
        // The next cell starts, which proves the previous one ended.
        open.closed = true;
        scan.valid_bytes = open.end_offset;
        scan.blocks.push_back(std::move(open));
      }
      open = CellBlock{};
      open.cell_index = *cell_index;
      open.sweep = row[c_sweep];
      open.attack = row[c_attack];
      open.scheduler = row[c_sched];
      open.hz = *hz;
      has_open = true;
      if (*seed_index != 0) {
        stop("rows of cell " + std::to_string(*cell_index) + " start mid-cell");
        has_open = false;
        break;
      }
    }
    open.seeds.push_back(*seed);
    open.run_lines.push_back(line);
    open.end_offset = line_end;
    offset = line_end;
  }

  // EOF cannot prove the final block complete; hand it over open and let
  // the caller decide against its expected seed set.
  if (scan.clean && has_open) scan.blocks.push_back(std::move(open));
  return scan;
}

}  // namespace mtr::dist
