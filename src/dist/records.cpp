#include "dist/records.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "report/result_sink.hpp"

namespace mtr::dist {
namespace {

/// Index past the closing quote of the string starting at `from` (which
/// must point at the opening quote), honouring backslash escapes; npos when
/// the string never closes (truncated line).
std::size_t skip_json_string(const std::string& line, std::size_t from) {
  for (std::size_t j = from + 1; j < line.size(); ++j) {
    if (line[j] == '\\') {
      ++j;
    } else if (line[j] == '"') {
      return j + 1;
    }
  }
  return std::string::npos;
}

std::string json_unescape(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '\\' || i + 1 >= token.size()) {
      out += token[i];
      continue;
    }
    const char esc = token[++i];
    switch (esc) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        // Our writer only emits \u00XX for control characters.
        if (i + 4 < token.size()) {
          out += static_cast<char>(
              std::strtoul(std::string(token.substr(i + 1, 4)).c_str(), nullptr, 16));
          i += 4;
        }
        break;
      default: out += esc; break;
    }
  }
  return out;
}

}  // namespace

bool parse_json_line(const std::string& line,
                     std::map<std::string, std::string>& out) {
  out.clear();
  if (line.empty() || line.front() != '{') return false;
  std::size_t i = 1;
  if (i < line.size() && line[i] == '}') return i + 1 == line.size();
  for (;;) {
    if (i >= line.size() || line[i] != '"') return false;
    const std::size_t key_end = skip_json_string(line, i);
    if (key_end == std::string::npos) return false;
    const std::string key = line.substr(i + 1, key_end - i - 2);
    i = key_end;
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    const std::size_t val_start = i;
    if (i < line.size() && line[i] == '"') {
      i = skip_json_string(line, i);
      if (i == std::string::npos) return false;
    } else if (i < line.size() && line[i] == '{') {
      // One level of nesting (the per-stat {...} objects), strings inside
      // respected.
      int depth = 1;
      ++i;
      while (i < line.size() && depth > 0) {
        if (line[i] == '"') {
          i = skip_json_string(line, i);
          if (i == std::string::npos) return false;
        } else {
          if (line[i] == '{') ++depth;
          if (line[i] == '}') --depth;
          ++i;
        }
      }
      if (depth != 0) return false;
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      if (i == val_start) return false;
    }
    out[key] = line.substr(val_start, i - val_start);
    if (i >= line.size()) return false;
    if (line[i] == '}') return i + 1 == line.size();
    if (line[i] != ',') return false;
    ++i;
  }
}

std::optional<std::string> json_string(
    const std::map<std::string, std::string>& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.size() < 2 || it->second.front() != '"' ||
      it->second.back() != '"')
    return std::nullopt;
  return json_unescape(
      std::string_view(it->second).substr(1, it->second.size() - 2));
}

std::optional<std::uint64_t> json_u64(
    const std::map<std::string, std::string>& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  return parse_u64(it->second);
}

std::optional<std::int64_t> json_i64(
    const std::map<std::string, std::string>& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  return parse_number<std::int64_t>(it->second);
}

std::optional<double> json_double(
    const std::map<std::string, std::string>& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end != it->second.c_str() + it->second.size()) return std::nullopt;
  return v;
}

std::optional<bool> json_bool(const std::map<std::string, std::string>& fields,
                              const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  if (it->second == "true") return true;
  if (it->second == "false") return false;
  return std::nullopt;
}

std::vector<std::string> cell_stat_keys(std::uint64_t version) {
  std::vector<std::string> k;
  core::CellStats cell;
  cell.for_each_stat(
      [&](const char* name, const RunningStats&, auto) { k.emplace_back(name); });
  if (version < 4) {
    // The pop_* summaries arrived with v4; older cell lines never had them.
    std::erase_if(k, [](const std::string& name) {
      return name.rfind("pop_", 0) == 0;
    });
  }
  return k;
}

const std::vector<std::pair<std::string, std::string>>& cell_sketch_columns() {
  static const std::vector<std::pair<std::string, std::string>> cols = [] {
    std::vector<std::pair<std::string, std::string>> c;
    core::CellStats cell;
    cell.for_each_sketch([&](const char* name, const QuantileSketch&, auto) {
      std::string dist = name;  // "pop_<x>_dist" -> run column "pop_<x>_sketch"
      std::string run = dist.substr(0, dist.size() - 5) + "_sketch";
      c.emplace_back(std::move(dist), std::move(run));
    });
    return c;
  }();
  return cols;
}

namespace {

std::string where(const std::string& path, std::uint64_t line) {
  return path + ":" + std::to_string(line);
}

/// Uniform "(byte N)" suffix: every scanner diagnostic names the byte
/// offset where the offending data begins, so a failure report can be
/// checked with dd/truncate directly.
std::string at_byte(std::uint64_t offset) {
  return " (byte " + std::to_string(offset) + ")";
}

[[noreturn]] void schema_error(const std::string& path, std::uint64_t line,
                               std::uint64_t offset, std::uint64_t found) {
  throw std::runtime_error(
      where(path, line) + ": record schema version " + std::to_string(found) +
      " is not supported by this build (writes v" +
      std::to_string(report::kSchemaVersion) + ", reads v" +
      std::to_string(report::kMinReadSchemaVersion) + "-v" +
      std::to_string(report::kSchemaVersion) + ")" + at_byte(offset));
}

[[noreturn]] void mixed_schema_error(const std::string& path, std::uint64_t line,
                                     std::uint64_t offset, std::uint64_t first,
                                     std::uint64_t found) {
  throw std::runtime_error(
      where(path, line) + ": record schema version changes from " +
      std::to_string(first) + " to " + std::to_string(found) +
      " mid-file — refusing to mix schema versions" + at_byte(offset));
}

/// The coordinate columns of one record, shared between the two scanners.
/// Scenario-axis members stay at their defaults for v2 records, the
/// population-axis members for v2/v3.
struct RecCoords {
  std::uint64_t cell_index = 0;
  std::string sweep, attack, scheduler, ptrace;
  std::uint64_t hz = 0, cpu_hz = 0, ram_frames = 0, reclaim_batch = 0;
  bool jiffy_timers = true;
  std::uint64_t population = 1;
  double attacker_fraction = 0.0;
  std::int64_t victim_nice = 0, attacker_nice = 0;

  friend bool operator==(const RecCoords&, const RecCoords&) = default;

  bool same_cell(const CellBlock& b) const {
    return b.cell_index == cell_index && b.sweep == sweep && b.attack == attack &&
           b.scheduler == scheduler && b.hz == hz && b.cpu_hz == cpu_hz &&
           b.ram_frames == ram_frames && b.reclaim_batch == reclaim_batch &&
           b.ptrace == ptrace && b.jiffy_timers == jiffy_timers &&
           b.population == population &&
           b.attacker_fraction == attacker_fraction &&
           b.victim_nice == victim_nice && b.attacker_nice == attacker_nice;
  }
  void stamp(CellBlock& b) const {
    b.cell_index = cell_index;
    b.sweep = sweep;
    b.attack = attack;
    b.scheduler = scheduler;
    b.hz = hz;
    b.cpu_hz = cpu_hz;
    b.ram_frames = ram_frames;
    b.reclaim_batch = reclaim_batch;
    b.ptrace = ptrace;
    b.jiffy_timers = jiffy_timers;
    b.population = population;
    b.attacker_fraction = attacker_fraction;
    b.victim_nice = victim_nice;
    b.attacker_nice = attacker_nice;
  }
};

/// Pulls the coordinates out of a parsed JSONL record; on failure returns
/// the name of the missing/invalid field.
const char* extract_json_coords(const std::map<std::string, std::string>& f,
                                std::uint64_t schema, RecCoords& out) {
  const auto sweep = json_string(f, "sweep");
  const auto cell_index = json_u64(f, "cell_index");
  const auto attack = json_string(f, "attack");
  const auto scheduler = json_string(f, "scheduler");
  const auto hz = json_u64(f, "hz");
  if (!sweep) return "sweep";
  if (!cell_index) return "cell_index";
  if (!attack) return "attack";
  if (!scheduler) return "scheduler";
  if (!hz) return "hz";
  out.sweep = *sweep;
  out.cell_index = *cell_index;
  out.attack = *attack;
  out.scheduler = *scheduler;
  out.hz = *hz;
  if (schema >= 3) {
    const auto cpu_hz = json_u64(f, "cpu_hz");
    const auto ram_frames = json_u64(f, "ram_frames");
    const auto reclaim_batch = json_u64(f, "reclaim_batch");
    const auto ptrace = json_string(f, "ptrace");
    const auto jiffy = json_bool(f, "jiffy_timers");
    if (!cpu_hz) return "cpu_hz";
    if (!ram_frames) return "ram_frames";
    if (!reclaim_batch) return "reclaim_batch";
    if (!ptrace) return "ptrace";
    if (!jiffy) return "jiffy_timers";
    out.cpu_hz = *cpu_hz;
    out.ram_frames = *ram_frames;
    out.reclaim_batch = *reclaim_batch;
    out.ptrace = *ptrace;
    out.jiffy_timers = *jiffy;
  }
  if (schema >= 4) {
    const auto population = json_u64(f, "population");
    const auto fraction = json_double(f, "attacker_fraction");
    const auto victim_nice = json_i64(f, "victim_nice");
    const auto attacker_nice = json_i64(f, "attacker_nice");
    if (!population) return "population";
    if (!fraction) return "attacker_fraction";
    if (!victim_nice) return "victim_nice";
    if (!attacker_nice) return "attacker_nice";
    out.population = *population;
    out.attacker_fraction = *fraction;
    out.victim_nice = *victim_nice;
    out.attacker_nice = *attacker_nice;
  }
  return nullptr;
}

}  // namespace

FileScan scan_jsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("cannot open " + path);

  FileScan scan;
  CellBlock open;
  bool has_open = false;
  std::uint64_t offset = 0;
  std::uint64_t line_no = 0;
  std::string line;
  // `offset` is the start of the line being examined when stop() fires,
  // which is exactly where the unusable tail begins.
  const auto stop = [&](std::string why) {
    scan.clean = false;
    scan.tail_error = std::move(why) + at_byte(offset);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (in.eof()) {
      // The last line had no trailing newline: a mid-write kill.
      stop(where(path, line_no) + ": truncated final line");
      break;
    }
    const std::uint64_t line_end = offset + line.size() + 1;

    std::map<std::string, std::string> f;
    if (!parse_json_line(line, f)) {
      stop(where(path, line_no) + ": unparseable record");
      break;
    }
    const auto record = json_string(f, "record");
    const auto schema = json_u64(f, "schema");
    if (!record || !schema) {
      stop(where(path, line_no) + ": record missing or invalid field '" +
           (!record ? "record" : "schema") + "'");
      break;
    }
    if (*schema < report::kMinReadSchemaVersion ||
        *schema > report::kSchemaVersion)
      schema_error(path, line_no, offset, *schema);
    if (scan.schema == 0) scan.schema = *schema;
    else if (scan.schema != *schema)
      mixed_schema_error(path, line_no, offset, scan.schema, *schema);

    RecCoords c;
    if (const char* bad = extract_json_coords(f, *schema, c)) {
      stop(where(path, line_no) + ": record missing or invalid field '" +
           bad + "'");
      break;
    }

    if (*record == "run") {
      const auto seed = json_u64(f, "seed");
      const auto seed_index = json_u64(f, "seed_index");
      if (!seed || !seed_index) {
        stop(where(path, line_no) + ": run record missing or invalid field '" +
             (!seed ? "seed" : "seed_index") + "'");
        break;
      }
      if (!has_open) {
        if (*seed_index != 0) {
          stop(where(path, line_no) + ": run records of cell " +
               std::to_string(c.cell_index) + " start mid-cell");
          break;
        }
        open = CellBlock{};
        open.schema = *schema;
        open.first_line = line_no;
        c.stamp(open);
        has_open = true;
      } else if (!c.same_cell(open)) {
        stop(where(path, line_no) + ": cell " + std::to_string(open.cell_index) +
             " has run records but no summary");
        break;
      } else if (*seed_index != open.seeds.size()) {
        stop(where(path, line_no) + ": seed_index discontinuity in cell " +
             std::to_string(c.cell_index));
        break;
      }
      open.seeds.push_back(*seed);
      open.run_lines.push_back(line);
    } else if (*record == "cell") {
      const auto n = json_u64(f, "seeds");
      if (!has_open || !c.same_cell(open)) {
        stop(where(path, line_no) + ": cell summary for cell " +
             std::to_string(c.cell_index) + " without its run records");
        break;
      }
      if (!n || *n != open.seeds.size()) {
        stop(where(path, line_no) + ": cell " + std::to_string(c.cell_index) +
             " summary seed count disagrees with its run records");
        break;
      }
      open.cell_line = line;
      open.closed = true;
      open.end_offset = line_end;
      scan.valid_bytes = line_end;
      scan.blocks.push_back(std::move(open));
      open = CellBlock{};
      has_open = false;
    } else {
      stop(where(path, line_no) + ": unknown record type '" + *record + "'");
      break;
    }
    offset = line_end;
  }

  if (scan.clean && has_open) {
    // The orphan runs begin right after the last complete cell.
    offset = scan.valid_bytes;
    stop(where(path, open.first_line) + ": incomplete cell " +
         std::to_string(open.cell_index) +
         " at end of file (runs without a summary)");
  }
  return scan;
}

FileScan scan_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("cannot open " + path);

  FileScan scan;
  std::string line;
  if (!std::getline(in, line)) return scan;  // empty file: nothing done yet
  if (in.eof()) {
    scan.clean = false;
    scan.tail_error = where(path, 1) + ": truncated header row" + at_byte(0);
    return scan;
  }
  const std::vector<std::string> header = report::split_csv_line(line);
  // The header row names the layout: the current schema or any older one
  // this build still reads.
  std::uint64_t version = 0;
  for (std::uint64_t v = report::kSchemaVersion;
       v >= report::kMinReadSchemaVersion; --v) {
    if (header == report::run_schema_keys(v)) {
      version = v;
      break;
    }
  }
  if (version == 0)
    throw std::runtime_error(
        where(path, 1) + ": CSV header matches no supported schema layout "
        "(this build writes v" + std::to_string(report::kSchemaVersion) +
        ", reads v" + std::to_string(report::kMinReadSchemaVersion) + "-v" +
        std::to_string(report::kSchemaVersion) +
        ") — refusing to mix schema versions" + at_byte(0));
  scan.schema = version;
  const auto col = [&](const char* key) {
    for (std::size_t i = 0; i < header.size(); ++i)
      if (header[i] == key) return i;
    throw std::runtime_error(std::string("missing CSV column ") + key);
  };
  const std::size_t c_schema = col("schema"), c_sweep = col("sweep"),
                    c_cell = col("cell_index"), c_attack = col("attack"),
                    c_sched = col("scheduler"), c_hz = col("hz"),
                    c_seed = col("seed"), c_seed_i = col("seed_index");
  const bool v3 = version >= 3;
  const std::size_t c_cpu = v3 ? col("cpu_hz") : 0;
  const std::size_t c_ram = v3 ? col("ram_frames") : 0;
  const std::size_t c_reclaim = v3 ? col("reclaim_batch") : 0;
  const std::size_t c_ptrace = v3 ? col("ptrace") : 0;
  const std::size_t c_jiffy = v3 ? col("jiffy_timers") : 0;
  const bool v4 = version >= 4;
  const std::size_t c_pop = v4 ? col("population") : 0;
  const std::size_t c_frac = v4 ? col("attacker_fraction") : 0;
  const std::size_t c_vnice = v4 ? col("victim_nice") : 0;
  const std::size_t c_anice = v4 ? col("attacker_nice") : 0;

  std::uint64_t offset = line.size() + 1;
  std::uint64_t line_no = 1;
  scan.valid_bytes = offset;
  scan.header_bytes = offset;
  CellBlock open;
  bool has_open = false;
  // As in scan_jsonl: `offset` is the start of the row under examination
  // when stop() fires — the first unusable byte.
  const auto stop = [&](std::string why) {
    scan.clean = false;
    scan.tail_error = std::move(why) + at_byte(offset);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (in.eof()) {
      stop(where(path, line_no) + ": truncated final row");
      break;
    }
    const std::uint64_t line_end = offset + line.size() + 1;
    const std::vector<std::string> row = report::split_csv_line(line);
    if (row.size() != header.size()) {
      stop(where(path, line_no) + ": malformed row (" +
           std::to_string(row.size()) + " of " +
           std::to_string(header.size()) + " columns)");
      break;
    }
    // Strict full-match parsing on every numeric coordinate: a corrupt
    // row must stop the scan at a named field, not round-trip a mangled
    // value into resume/merge decisions.
    const auto num = [&](std::size_t c, const char* key) {
      const std::optional<std::uint64_t> v = parse_u64(row[c]);
      if (!v)
        stop(where(path, line_no) + ": field '" + key +
             "' has non-numeric value '" + row[c] + "'");
      return v;
    };
    const auto schema = num(c_schema, "schema");
    if (!schema) break;
    if (*schema < report::kMinReadSchemaVersion ||
        *schema > report::kSchemaVersion)
      schema_error(path, line_no, offset, *schema);
    if (*schema != version)
      mixed_schema_error(path, line_no, offset, version, *schema);
    const auto cell_index = num(c_cell, "cell_index");
    if (!cell_index) break;
    const auto hz = num(c_hz, "hz");
    if (!hz) break;
    const auto seed = num(c_seed, "seed");
    if (!seed) break;
    const auto seed_index = num(c_seed_i, "seed_index");
    if (!seed_index) break;

    RecCoords c;
    c.cell_index = *cell_index;
    c.sweep = row[c_sweep];
    c.attack = row[c_attack];
    c.scheduler = row[c_sched];
    c.hz = *hz;
    if (v3) {
      const auto cpu_hz = num(c_cpu, "cpu_hz");
      if (!cpu_hz) break;
      const auto ram_frames = num(c_ram, "ram_frames");
      if (!ram_frames) break;
      const auto reclaim_batch = num(c_reclaim, "reclaim_batch");
      if (!reclaim_batch) break;
      c.cpu_hz = *cpu_hz;
      c.ram_frames = *ram_frames;
      c.reclaim_batch = *reclaim_batch;
      c.ptrace = row[c_ptrace];
      if (row[c_jiffy] != "true" && row[c_jiffy] != "false") {
        stop(where(path, line_no) +
             ": field 'jiffy_timers' has non-boolean value '" + row[c_jiffy] +
             "'");
        break;
      }
      c.jiffy_timers = row[c_jiffy] == "true";
    }
    if (v4) {
      // The nice columns are signed and attacker_fraction is a double, so
      // they get their own strict parsers beside num()'s parse_u64.
      const auto population = num(c_pop, "population");
      if (!population) break;
      const auto fraction = parse_f64(row[c_frac]);
      if (!fraction) {
        stop(where(path, line_no) +
             ": field 'attacker_fraction' has non-numeric value '" +
             row[c_frac] + "'");
        break;
      }
      const auto victim_nice = parse_number<std::int64_t>(row[c_vnice]);
      if (!victim_nice) {
        stop(where(path, line_no) +
             ": field 'victim_nice' has non-numeric value '" + row[c_vnice] +
             "'");
        break;
      }
      const auto attacker_nice = parse_number<std::int64_t>(row[c_anice]);
      if (!attacker_nice) {
        stop(where(path, line_no) +
             ": field 'attacker_nice' has non-numeric value '" + row[c_anice] +
             "'");
        break;
      }
      c.population = *population;
      c.attacker_fraction = *fraction;
      c.victim_nice = *victim_nice;
      c.attacker_nice = *attacker_nice;
    }

    if (has_open && open.cell_index == c.cell_index) {
      if (!c.same_cell(open)) {
        stop(where(path, line_no) + ": conflicting coordinates within cell " +
             std::to_string(c.cell_index));
        break;
      }
      if (*seed_index != open.seeds.size()) {
        stop(where(path, line_no) + ": seed_index discontinuity in cell " +
             std::to_string(c.cell_index));
        break;
      }
    } else {
      if (has_open) {
        // The next cell starts, which proves the previous one ended.
        open.closed = true;
        scan.valid_bytes = open.end_offset;
        scan.blocks.push_back(std::move(open));
      }
      open = CellBlock{};
      open.schema = *schema;
      open.first_line = line_no;
      c.stamp(open);
      has_open = true;
      if (*seed_index != 0) {
        stop(where(path, line_no) + ": rows of cell " +
             std::to_string(c.cell_index) + " start mid-cell");
        has_open = false;
        break;
      }
    }
    open.seeds.push_back(*seed);
    open.run_lines.push_back(line);
    open.end_offset = line_end;
    offset = line_end;
  }

  // EOF cannot prove the final block complete; hand it over open and let
  // the caller decide against its expected seed set. The open block
  // survives an unclean scan too: its rows were all validated before the
  // stop, and a tear that cut into the NEXT cell's first row must not
  // discard the complete rows of the cell before it.
  if (has_open) scan.blocks.push_back(std::move(open));
  return scan;
}

}  // namespace mtr::dist
