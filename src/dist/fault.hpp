// Deterministic fault injection for the sweep pipeline: a FaultPlan parsed
// from `--fault-inject` (or the MTR_FAULT_INJECT environment variable, so a
// supervisor can target one subprocess without touching its argv) names
// crash points the driver arms — aborts between cells, a SIGKILL watchdog,
// torn final lines, and transient sink-flush failures. The same seam backs
// the chaos tests and the CI chaos job: every recovery path mtr_fleet
// relies on is exercised by a seeded, reproducible fault schedule instead
// of hand-rolled kill loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mtr::dist {

/// Exit code of an injected crash (`crash-after-cell`). Distinct from the
/// generic error exit 1 so supervisors and tests can tell an injected abort
/// from a real failure.
inline constexpr int kFaultCrashExitCode = 70;

/// One parsed fault schedule. All faults are optional and compose; an
/// empty plan injects nothing and costs nothing.
struct FaultPlan {
  /// crash-after-cell=K: std::_Exit(kFaultCrashExitCode) right after the
  /// K-th completed cell's records are flushed (and its heartbeat/metrics
  /// snapshots published). K=0 crashes after the sinks open but before any
  /// cell runs, leaving zero-byte output files behind.
  std::optional<std::uint64_t> crash_after_cell;
  /// torn-tail=B: at crash time, chop B bytes off the end of every active
  /// sink file — the torn final line a kill mid-write leaves. Requires
  /// crash-after-cell.
  std::uint64_t torn_tail_bytes = 0;
  /// sigkill-after-ms=T: a detached watchdog thread raises SIGKILL against
  /// the process T milliseconds after the driver arms. The hardest kill:
  /// no unwinding, no flush, any write may tear.
  std::optional<std::uint64_t> sigkill_after_ms;
  /// fail-flush-at=J: the J-th sink flush (1-based; each per-cell CSV or
  /// JSONL write counts one) throws before any byte of that cell reaches
  /// the stream — a transient I/O failure that unwinds the sweep cleanly.
  std::optional<std::uint64_t> fail_flush_at;

  bool active() const {
    return crash_after_cell.has_value() || sigkill_after_ms.has_value() ||
           fail_flush_at.has_value();
  }
};

/// Parses "key=value[,key=value...]" with the keys above. An empty spec is
/// the empty plan. Throws std::runtime_error on unknown keys, malformed
/// values, or torn-tail without crash-after-cell.
FaultPlan parse_fault_plan(const std::string& spec);

/// Canonical spec string (parse_fault_plan round-trips it); "" for the
/// empty plan. What mtr_fleet exports as MTR_FAULT_INJECT.
std::string to_string(const FaultPlan& plan);

/// Arms a FaultPlan inside the sweep driver. The driver calls the on_*
/// hooks at the matching pipeline points; each fires its fault exactly
/// once. Thread-safe: counters are atomic (the flush/cell hooks run under
/// the runner's emission lock, the watchdog on its own thread).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  bool active() const { return plan_.active(); }
  bool has_flush_fault() const { return plan_.fail_flush_at.has_value(); }

  /// Starts the SIGKILL watchdog thread, if configured. Call once.
  void arm_sigkill();

  /// Replaces the set of files torn-tail truncates at crash time (the
  /// current sweep's active sink files).
  void set_active_files(std::vector<std::string> files);

  /// crash-after-cell=0 fires here (sinks exist, nothing written).
  void on_sinks_open();

  /// crash-after-cell=K fires after the K-th call.
  void on_cell_complete();

  /// fail-flush-at=J throws std::runtime_error on the J-th call.
  void on_sink_flush(const char* kind);

 private:
  [[noreturn]] void crash_now();

  FaultPlan plan_;
  std::vector<std::string> files_;
  std::atomic<std::uint64_t> cells_{0};
  std::atomic<std::uint64_t> flushes_{0};
};

}  // namespace mtr::dist
