#include "dist/driver.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "dist/metrics.hpp"
#include "dist/records.hpp"
#include "dist/resume.hpp"
#include "dist/status.hpp"
#include "trace/metrics.hpp"

namespace mtr::dist {
namespace {

/// Swallows everything; backs SweepContext::out under --quiet/--dry-run.
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int ch) override { return ch; }
};

std::ostream& null_stream() {
  static NullBuffer buffer;
  static std::ostream os(&buffer);
  return os;
}

constexpr const char* kUsage =
    "usage: mtr_sweep [options] [sweep...]\n"
    "\n"
    "  --list             list registered sweeps and exit\n"
    "  --all              run every registered sweep\n"
    "  --csv PATH         append run records to one shared CSV file\n"
    "  --jsonl PATH       append run + cell records to one shared JSONL file\n"
    "  --out-dir DIR      write fresh <sweep>.csv and <sweep>.jsonl per sweep\n"
    "  --trace-dir DIR    record kernel event traces and write one\n"
    "                     Chrome/Perfetto trace-event JSON per cell (first\n"
    "                     replicate) into DIR; CSV/JSONL stay byte-identical\n"
    "  --metrics PATH     write sweep metrics (kernel counters, phase\n"
    "                     timers, pool utilization, telemetry series and\n"
    "                     quantile sketches) as schema-versioned JSON;\n"
    "                     shard files fold with mtr_merge --metrics. The\n"
    "                     file is republished (atomic rename) after every\n"
    "                     cell, one cell behind the records; --resume\n"
    "                     trusts only cells that snapshot covers and\n"
    "                     reruns the rest, so folded counters stay exact\n"
    "                     across crashes\n"
    "  --status-file PATH rewrite PATH (atomic rename) after every cell\n"
    "                     with a JSON heartbeat: cells done/total, elapsed,\n"
    "                     ETA, per-worker busy fractions\n"
    "  --threads N        BatchRunner worker pool (default MTR_BENCH_THREADS)\n"
    "  --seeds N          replicate seeds per cell (default MTR_BENCH_SEEDS)\n"
    "  --first-seed S     first replicate seed (default 42)\n"
    "  --scale X          workload scale (default MTR_BENCH_SCALE)\n"
    "  --engine E         kernel step loop: 'event' (calendar queue) or\n"
    "                     'slice' (reference loop); default: the kernel's\n"
    "                     own setting. Either engine yields byte-identical\n"
    "                     CSV/JSONL artifacts — CI diffs the two\n"
    "  --shard I/N        run only the cells with global index % N == I\n"
    "                     (0-based); point each shard at its own output and\n"
    "                     stitch them with mtr_merge\n"
    "  --resume           scan the existing output, drop any partial tail a\n"
    "                     killed run left, and skip cells already complete\n"
    "  --dry-run          print the selected sweeps, cell counts, and shard\n"
    "                     ownership, then exit without running anything\n"
    "  --fault-inject S   arm a deterministic fault schedule (chaos tests):\n"
    "                     crash-after-cell=K,torn-tail=B,sigkill-after-ms=T,\n"
    "                     fail-flush-at=J — any subset. Overrides the\n"
    "                     MTR_FAULT_INJECT environment variable, which\n"
    "                     mtr_fleet uses to target one shard subprocess\n"
    "  --quiet            suppress the ASCII figure rendering and the\n"
    "                     per-cell progress lines (begin/finish summaries\n"
    "                     still print; --no-progress silences those too)\n"
    "  --no-progress      suppress the stderr progress/ETA lines\n"
    "  --help             print this message\n"
    "\n"
    "Sharded and resumed runs skip the ASCII rendering (their cell set is\n"
    "partial); the CSV/JSONL sinks plus mtr_merge are the output.\n"
    "\n"
    "env defaults: MTR_BENCH_SCALE, MTR_BENCH_SEEDS, MTR_BENCH_THREADS,\n"
    "MTR_BENCH_PROGRESS=0 disables progress.\n";

std::vector<std::uint64_t> consecutive_seeds(std::size_t n, std::uint64_t first) {
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) seeds[i] = first + i;
  return seeds;
}

[[noreturn]] void bad_usage(const std::string& message) {
  throw std::runtime_error(message + "\n\n" + kUsage);
}

/// Strict full-match parse ("2x" is an error, unlike atof's silent 2.0);
/// the same mtr::parse_* helpers the record scanners use.
double parse_double_flag(std::string_view flag, const std::string& v) {
  const std::optional<double> x = parse_f64(v);
  if (!x) bad_usage(std::string(flag) + ": invalid number '" + v + "'");
  return *x;
}

long parse_long_flag(std::string_view flag, const std::string& v) {
  const std::optional<long> x = parse_number<long>(v);
  if (!x) bad_usage(std::string(flag) + ": invalid integer '" + v + "'");
  return *x;
}

void create_parent_dirs(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
}

/// Publishes a metrics document the same way the status heartbeat is
/// published: temp file + atomic rename, so a reader (or a resume after a
/// kill) sees a complete document or nothing — never a torn prefix.
void publish_metrics_file(const std::string& path,
                          const std::vector<trace::SweepMetrics>& sweeps) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open metrics file: " + tmp);
    trace::write_metrics_json(out, sweeps, /*shards=*/1);
    out.flush();
    if (!out) throw std::runtime_error("cannot write metrics file: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("cannot publish metrics file " + path + ": " +
                             ec.message());
}

}  // namespace

SweepOptions default_sweep_options() {
  SweepOptions o;
  // Empty counts as unset; garbage is rejected with the same strictness as
  // the flags — a typo'd env var in a cluster launch script must not
  // silently run the wrong grid.
  const auto env = [](const char* name) -> const char* {
    const char* s = std::getenv(name);
    return s != nullptr && *s != '\0' ? s : nullptr;
  };
  if (const char* s = env("MTR_BENCH_SCALE")) {
    const double v = parse_double_flag("MTR_BENCH_SCALE", s);
    if (v <= 0.0) bad_usage("MTR_BENCH_SCALE must be > 0");
    o.scale = v;
  }
  std::size_t n_seeds = 3;
  if (const char* s = env("MTR_BENCH_SEEDS")) {
    const long v = parse_long_flag("MTR_BENCH_SEEDS", s);
    if (v <= 0) bad_usage("MTR_BENCH_SEEDS must be >= 1");
    n_seeds = static_cast<std::size_t>(v);
  }
  o.seeds = consecutive_seeds(n_seeds, 42);
  if (const char* s = env("MTR_BENCH_THREADS")) {
    const long v = parse_long_flag("MTR_BENCH_THREADS", s);
    if (v <= 0) bad_usage("MTR_BENCH_THREADS must be >= 1");
    o.threads = static_cast<unsigned>(v);
  }
  if (const char* s = env("MTR_BENCH_PROGRESS"))
    o.progress = std::string_view(s) != "0";
  if (const char* s = env("MTR_FAULT_INJECT")) o.fault = parse_fault_plan(s);
  return o;
}

SweepOptions parse_sweep_args(int argc, const char* const* argv) {
  SweepOptions o = default_sweep_options();
  std::size_t n_seeds = o.seeds.size();
  std::uint64_t first_seed = o.seeds.empty() ? 42 : o.seeds.front();

  const auto value = [&](int& i, std::string_view flag) -> std::string {
    if (i + 1 >= argc) bad_usage(std::string(flag) + " requires a value");
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") o.help = true;
    else if (arg == "--list") o.list = true;
    else if (arg == "--all") o.all = true;
    else if (arg == "--quiet") o.quiet = true;
    else if (arg == "--no-progress") o.progress = false;
    else if (arg == "--dry-run") o.dry_run = true;
    else if (arg == "--resume") o.resume = true;
    else if (arg == "--shard") {
      o.shard = parse_shard_spec(value(i, arg));
    } else if (arg == "--csv") o.csv_path = value(i, arg);
    else if (arg == "--jsonl") o.jsonl_path = value(i, arg);
    else if (arg == "--out-dir") o.out_dir = value(i, arg);
    else if (arg == "--trace-dir") o.trace_dir = value(i, arg);
    else if (arg == "--metrics") o.metrics_path = value(i, arg);
    else if (arg == "--status-file") o.status_file = value(i, arg);
    else if (arg == "--scale") {
      const double v = parse_double_flag(arg, value(i, arg));
      if (v <= 0.0) bad_usage("--scale must be > 0");
      o.scale = v;
    } else if (arg == "--fault-inject") {
      o.fault = parse_fault_plan(value(i, arg));
    } else if (arg == "--engine") {
      const std::string v = value(i, arg);
      if (v == "event") o.event_driven = true;
      else if (v == "slice") o.event_driven = false;
      else bad_usage("--engine must be 'event' or 'slice', got '" + v + "'");
    } else if (arg == "--seeds") {
      const long v = parse_long_flag(arg, value(i, arg));
      if (v <= 0) bad_usage("--seeds must be >= 1");
      n_seeds = static_cast<std::size_t>(v);
    } else if (arg == "--first-seed") {
      // strtoull would accept (and negate) a leading '-'; require digits.
      const std::optional<std::uint64_t> v = parse_u64(value(i, arg));
      if (!v) bad_usage("--first-seed must be a non-negative integer");
      first_seed = *v;
    } else if (arg == "--threads") {
      const long v = parse_long_flag(arg, value(i, arg));
      if (v <= 0) bad_usage("--threads must be >= 1");
      o.threads = static_cast<unsigned>(v);
    } else if (!arg.empty() && arg.front() == '-') {
      bad_usage("unknown flag: " + std::string(arg));
    } else {
      o.sweeps.emplace_back(arg);
    }
  }
  o.seeds = consecutive_seeds(n_seeds, first_seed);
  return o;
}

int run_sweeps(const report::SweepRegistry& registry, const SweepOptions& options,
               std::ostream& out, std::ostream& err) {
  if (options.help) {
    out << kUsage;
    return 0;
  }
  if (options.list) {
    for (const report::SweepSpec& s : registry.specs())
      out << s.name << "  " << s.title << '\n';
    return 0;
  }

  std::vector<const report::SweepSpec*> selected;
  if (options.all && !options.sweeps.empty()) {
    err << "mtr_sweep: --all conflicts with naming sweeps — pick one\n";
    return 2;
  }
  if (options.all) {
    for (const report::SweepSpec& s : registry.specs()) selected.push_back(&s);
  } else {
    for (const std::string& name : options.sweeps) {
      const report::SweepSpec* spec = registry.find(name);
      if (spec == nullptr) {
        err << "mtr_sweep: unknown sweep '" << name << "' (try --list)\n";
        return 2;
      }
      selected.push_back(spec);
    }
  }
  if (selected.empty()) {
    err << "mtr_sweep: nothing selected — name sweeps, or pass --all / --list\n";
    return 2;
  }

  const bool shared_sinks = !options.csv_path.empty() || !options.jsonl_path.empty();
  if (options.resume && !shared_sinks && options.out_dir.empty()) {
    err << "mtr_sweep: --resume needs output to resume from — pass --csv, "
           "--jsonl, or --out-dir\n";
    return 2;
  }
  if (options.resume && shared_sinks && !options.out_dir.empty()) {
    err << "mtr_sweep: --resume supports either --csv/--jsonl or --out-dir, "
           "not both at once\n";
    return 2;
  }

  if (!options.dry_run) {
    if (!options.out_dir.empty())
      std::filesystem::create_directories(options.out_dir);
    if (!options.csv_path.empty()) create_parent_dirs(options.csv_path);
    if (!options.jsonl_path.empty()) create_parent_dirs(options.jsonl_path);
    if (!options.trace_dir.empty())
      std::filesystem::create_directories(options.trace_dir);
    if (!options.metrics_path.empty()) create_parent_dirs(options.metrics_path);
    if (!options.status_file.empty()) create_parent_dirs(options.status_file);
  }

  const bool want_metrics = !options.metrics_path.empty() && !options.dry_run;

  // The armed fault schedule (inert when --fault-inject/MTR_FAULT_INJECT is
  // absent, and under --dry-run, which opens no sinks to tear).
  FaultInjector injector(options.dry_run ? FaultPlan{} : options.fault);
  injector.arm_sigkill();
  std::optional<report::ScopedSinkFlushHook> flush_hook;
  if (injector.has_flush_fault())
    flush_hook.emplace(
        [&injector](const char* kind) { injector.on_sink_flush(kind); });

  // Crash-consistent metrics resume: the per-cell snapshot published below
  // is the source of truth for which cells' counters are already folded.
  // Completed record cells beyond its coverage roll back and rerun (the
  // records come out byte-identical either way; the counters fold once).
  MetricsFile metrics_base;
  bool have_metrics_base = false;
  if (want_metrics && options.resume &&
      std::filesystem::exists(options.metrics_path)) {
    metrics_base = read_metrics_json(options.metrics_path);
    have_metrics_base = true;
  }
  const auto base_for =
      [&](const std::string& name) -> const trace::SweepMetrics* {
    if (!have_metrics_base) return nullptr;
    for (const trace::SweepMetrics& m : metrics_base.sweeps)
      if (m.sweep == name) return &m;
    return nullptr;
  };

  // One resume index for shared files (they span every selected sweep);
  // out-dir files are per sweep and get their own index inside the loop.
  ResumeIndex shared_resume;
  if (options.resume && shared_sinks) {
    std::optional<std::uint64_t> cap;
    if (want_metrics) {
      std::uint64_t covered = 0;
      for (const trace::SweepMetrics& m : metrics_base.sweeps)
        covered += m.cells;
      cap = covered;
    }
    shared_resume = ResumeIndex::scan(options.csv_path, options.jsonl_path,
                                      options.seeds, cap);
    if (shared_resume.metrics_overrun()) {
      err << "mtr_sweep: resume: metrics snapshot is ahead of the records — "
             "rerunning everything against a fresh fold\n";
      have_metrics_base = false;
      metrics_base = MetricsFile{};
    }
    if (!options.dry_run) shared_resume.truncate_files();
    err << "mtr_sweep: resume: " << shared_resume.size()
        << " cell(s) already complete\n";
  }

  // The invocation-global cell counter every grid claims its index range
  // from — the ordinal that makes shard outputs mergeable.
  std::size_t cell_cursor = 0;
  std::size_t owned_cursor = 0;
  const bool partial =
      options.dry_run || options.shard.sharded() || options.resume;

  report::NullSink null_sink;
  report::ProgressReporter progress(err, options.progress && !options.dry_run);
  // --quiet keeps the begin/finish summary lines (and the resume notes
  // above, which print directly to `err`) but drops the line-per-cell
  // stream.
  if (options.quiet) progress.set_per_cell(false);

  std::vector<trace::SweepMetrics> all_metrics;

  for (const report::SweepSpec* spec : selected) {
    ResumeIndex sweep_resume;
    const ResumeIndex* resume = nullptr;
    const std::filesystem::path dir(options.out_dir);
    const std::string dir_csv =
        options.out_dir.empty() ? "" : (dir / (spec->name + ".csv")).string();
    const std::string dir_jsonl =
        options.out_dir.empty() ? "" : (dir / (spec->name + ".jsonl")).string();
    if (options.resume && shared_sinks) {
      resume = &shared_resume;
    } else if (options.resume) {
      std::optional<std::uint64_t> cap;
      if (want_metrics) {
        const trace::SweepMetrics* base = base_for(spec->name);
        cap = base != nullptr ? base->cells : 0;
      }
      sweep_resume = ResumeIndex::scan(dir_csv, dir_jsonl, options.seeds, cap);
      if (sweep_resume.metrics_overrun())
        err << "mtr_sweep: resume: " << spec->name
            << ": metrics snapshot is ahead of the records — rerunning "
               "against a fresh fold\n";
      if (!options.dry_run) sweep_resume.truncate_files();
      if (sweep_resume.size() > 0)
        err << "mtr_sweep: resume: " << spec->name << ": " << sweep_resume.size()
            << " cell(s) already complete\n";
      resume = &sweep_resume;
    }

    // The shared --csv/--jsonl files are opened in append mode per sweep:
    // the first writer lays down the CSV header, later ones just extend
    // the table. --out-dir files are per sweep and start fresh — except
    // under --resume, where the kept prefix is appended to.
    report::MultiSink multi;
    if (!options.dry_run) {
      if (!options.csv_path.empty())
        multi.add(std::make_unique<report::CsvSink>(options.csv_path,
                                                    report::OpenMode::kAppend));
      if (!options.jsonl_path.empty())
        multi.add(std::make_unique<report::JsonlSink>(options.jsonl_path,
                                                      report::OpenMode::kAppend));
      if (!options.out_dir.empty()) {
        const report::OpenMode mode = options.resume
                                          ? report::OpenMode::kAppend
                                          : report::OpenMode::kTruncate;
        multi.add(std::make_unique<report::CsvSink>(dir_csv, mode));
        multi.add(std::make_unique<report::JsonlSink>(dir_jsonl, mode));
      }
    }
    if (!options.dry_run && injector.active()) {
      std::vector<std::string> fault_files;
      if (!options.csv_path.empty()) fault_files.push_back(options.csv_path);
      if (!options.jsonl_path.empty()) fault_files.push_back(options.jsonl_path);
      if (!dir_csv.empty()) fault_files.push_back(dir_csv);
      if (!dir_jsonl.empty()) fault_files.push_back(dir_jsonl);
      injector.set_active_files(std::move(fault_files));
      // crash-after-cell=0 tears down right here, leaving the freshly
      // opened (possibly zero-byte) sink files for resume to classify.
      if (spec == selected.front()) injector.on_sinks_open();
    }

    report::SweepContext ctx;
    ctx.scale = options.scale;
    ctx.seeds = options.seeds;
    ctx.threads = options.threads;
    ctx.event_driven = options.event_driven;
    ctx.sink = multi.empty() ? static_cast<report::ResultSink*>(&null_sink) : &multi;
    ctx.progress = &progress;
    ctx.out = options.quiet || options.dry_run ? &null_stream() : &out;
    ctx.cell_cursor = &cell_cursor;
    ctx.owned_cursor = &owned_cursor;
    ctx.dry_run = options.dry_run;
    ctx.partial = partial;
    ctx.plan = options.dry_run ? &out : nullptr;
    ctx.trace_dir = options.dry_run ? std::string() : options.trace_dir;
    trace::SweepMetrics sweep_metrics;
    sweep_metrics.sweep = spec->name;
    if (want_metrics && resume != nullptr && !resume->metrics_overrun()) {
      // Seed the fold with the counters the snapshot already covers; the
      // gate skips exactly those cells, so each cell folds exactly once.
      if (const trace::SweepMetrics* base = base_for(spec->name))
        sweep_metrics = *base;
    }
    ctx.metrics = want_metrics ? &sweep_metrics : nullptr;

    // The crash-consistent metrics republish. Deliberately one cell
    // behind: it snapshots the fold as it stood BEFORE the cell that
    // triggered the observer, and publishes before the status heartbeat
    // and before any injected crash fires. A kill at any instant
    // therefore leaves on-disk coverage ≤ the clean record prefix, which
    // is exactly what ResumeIndex::scan's metrics_cells cap assumes.
    std::function<void(const core::CellEvent&)> metrics_observer;
    if (want_metrics) {
      auto published = std::make_shared<trace::SweepMetrics>(sweep_metrics);
      metrics_observer = [path = options.metrics_path, &all_metrics, published,
                          current = &sweep_metrics](const core::CellEvent&) {
        std::vector<trace::SweepMetrics> snapshot = all_metrics;
        if (published->cells > 0) snapshot.push_back(*published);
        publish_metrics_file(path, snapshot);
        *published = *current;
      };
    }

    std::function<void(const core::CellEvent&)> status_observer;
    if (!options.status_file.empty() && !options.dry_run) {
      // The observer runs after the progress fold, so done() already
      // counts the cell that triggered it.
      status_observer = [path = options.status_file, prog = &progress,
                         sweep = spec->name](const core::CellEvent& ev) {
        StatusSnapshot s;
        s.sweep = sweep;
        s.cells_done = prog->done();
        s.cells_total = prog->total();
        s.elapsed_seconds = prog->elapsed_seconds();
        s.eta_seconds = report::eta_seconds(
            s.elapsed_seconds, s.cells_done,
            s.cells_total > s.cells_done ? s.cells_total - s.cells_done : 0);
        if (ev.worker_busy != nullptr && ev.pool_elapsed_seconds > 0.0) {
          s.worker_busy_fraction.reserve(ev.worker_busy->size());
          for (const double b : *ev.worker_busy)
            s.worker_busy_fraction.push_back(b / ev.pool_elapsed_seconds);
        }
        write_status_file(path, s);
      };
    }
    if (metrics_observer || status_observer || injector.active()) {
      // Order is the crash-consistency contract: metrics snapshot first,
      // heartbeat second, injected crash last — a real kill can land
      // between any two and resume still reconstructs exactly.
      ctx.observer = [metrics_observer, status_observer,
                      inj = &injector](const core::CellEvent& ev) {
        if (metrics_observer) metrics_observer(ev);
        if (status_observer) status_observer(ev);
        inj->on_cell_complete();
      };
    }
    if (options.shard.sharded() || resume != nullptr) {
      const ShardSpec shard = options.shard;
      ctx.gate = [shard, resume](const report::GridCellInfo& cell) {
        if (!shard.owns(cell.index)) return false;
        if (resume != nullptr && resume->completed(cell)) return false;
        return true;
      };
    }
    if (want_metrics) {
      const trace::ScopeTimer timer(sweep_metrics.phases, "sweep");
      spec->run(ctx);
    } else {
      spec->run(ctx);
    }
    progress.finish();
    if (want_metrics) all_metrics.push_back(std::move(sweep_metrics));
  }

  if (want_metrics) {
    try {
      publish_metrics_file(options.metrics_path, all_metrics);
    } catch (const std::exception& e) {
      err << "mtr_sweep: " << e.what() << '\n';
      return 1;
    }
  }

  if (options.dry_run) {
    out << "dry run: " << selected.size() << " sweep(s), " << cell_cursor
        << " cell(s)";
    if (options.shard.sharded())
      out << "; shard " << to_string(options.shard) << " runs " << owned_cursor;
    else if (options.resume)
      out << "; " << owned_cursor << " left to run";
    out << '\n';
  }
  return 0;
}

int sweep_main(const report::SweepRegistry& registry, int argc,
               const char* const* argv) {
  try {
    return run_sweeps(registry, parse_sweep_args(argc, argv), std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "mtr_sweep: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace mtr::dist
