// The mtr_sweep driver: flag/environment parsing and the run loop that
// builds sinks, wires progress, and composes the distributed-execution
// gates (shard ownership, resume skipping) into the SweepContext every
// sweep body runs against. Lives in the dist layer so the report substrate
// stays free of sharding/resume policy.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "dist/fault.hpp"
#include "dist/shard.hpp"
#include "report/sweep.hpp"

namespace mtr::dist {

struct SweepOptions {
  bool help = false;      // --help: print usage and exit 0
  bool list = false;      // --list: print the registry and exit
  bool all = false;       // --all: run every registered sweep
  bool quiet = false;     // --quiet: suppress the ASCII figure rendering
  bool progress = true;   // --no-progress / MTR_BENCH_PROGRESS=0
  bool dry_run = false;   // --dry-run: print the cell plan, execute nothing
  bool resume = false;    // --resume: skip cells already complete on disk
  ShardSpec shard;        // --shard I/N; default 0/1 = everything
  std::vector<std::string> sweeps;  // positional sweep names

  std::string csv_path;    // --csv: one shared file, append-safe
  std::string jsonl_path;  // --jsonl: one shared file, append-safe
  std::string out_dir;     // --out-dir: <dir>/<sweep>.{csv,jsonl}
  std::string trace_dir;   // --trace-dir: per-cell Perfetto trace JSONs
  std::string metrics_path;  // --metrics: schema-versioned metrics.json
  std::string status_file;   // --status-file: atomic heartbeat JSON

  double scale = 0.25;
  std::vector<std::uint64_t> seeds;
  unsigned threads = 0;
  /// --engine event|slice: force the kernel step loop across every cell.
  /// Unset leaves the KernelConfig default. Not a grid axis: records carry
  /// no engine column, so runs differing only here are byte-comparable.
  std::optional<bool> event_driven;

  /// --fault-inject SPEC (or MTR_FAULT_INJECT, which the flag overrides):
  /// deterministic crash schedule for chaos testing — see dist/fault.hpp.
  /// The env override exists so mtr_fleet can arm faults in one targeted
  /// shard subprocess without the spec leaking into restarted attempts.
  FaultPlan fault;
};

/// Options with every default resolved from the environment
/// (MTR_BENCH_SCALE, MTR_BENCH_SEEDS, MTR_BENCH_THREADS,
/// MTR_BENCH_PROGRESS).
SweepOptions default_sweep_options();

/// Parses argv on top of default_sweep_options(); throws std::runtime_error
/// with a usage message on malformed input. Numeric flags are strict:
/// trailing garbage ("--scale 2x", "--threads 8q") is rejected.
SweepOptions parse_sweep_args(int argc, const char* const* argv);

/// Runs the selected sweeps: builds the sink stack (creating parent
/// directories for --csv/--jsonl/--out-dir paths), wires progress (to
/// `err`), applies shard/resume gating, streams results, renders figures
/// to `out`. Returns a process exit code (0 ok, 2 usage/selection error).
int run_sweeps(const report::SweepRegistry& registry, const SweepOptions& options,
               std::ostream& out, std::ostream& err);

/// The whole CLI: parse + run + error reporting. `main` forwards here.
int sweep_main(const report::SweepRegistry& registry, int argc,
               const char* const* argv);

}  // namespace mtr::dist
