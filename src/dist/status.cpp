#include "dist/status.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dist/json.hpp"

namespace mtr::dist {
namespace {

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Status sweep names come from the registry (identifiers), but escape the
/// two structural characters anyway so the file stays valid JSON.
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string render_status_json(const StatusSnapshot& s) {
  std::string out = "{\"record\": \"status\", \"sweep\": " +
                    json_string(s.sweep) +
                    ", \"cells_done\": " + std::to_string(s.cells_done) +
                    ", \"cells_total\": " + std::to_string(s.cells_total) +
                    ", \"elapsed_seconds\": " + json_double(s.elapsed_seconds) +
                    ", \"eta_seconds\": ";
  out += s.eta_seconds ? json_double(*s.eta_seconds) : "null";
  out += ", \"workers\": [";
  bool first = true;
  for (const double f : s.worker_busy_fraction) {
    if (!first) out += ", ";
    first = false;
    out += json_double(f);
  }
  out += "]}\n";
  return out;
}

void write_status_file(const std::string& path, const StatusSnapshot& s) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open status file: " + tmp);
    out << render_status_json(s);
    out.flush();
    if (!out) throw std::runtime_error("cannot write status file: " + tmp);
  }
  // rename(2) within one directory is atomic: a concurrent reader sees
  // either the previous snapshot or this one, never a prefix.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("cannot publish status file " + path + ": " +
                             ec.message());
}

StatusSnapshot read_status_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open status file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse_document(buf.str());
  if (json::get_string(doc, "record") != "status")
    throw std::runtime_error(path + ": not a status heartbeat document");
  StatusSnapshot s;
  s.sweep = json::get_string(doc, "sweep");
  s.cells_done = json::get_u64(doc, "cells_done");
  s.cells_total = json::get_u64(doc, "cells_total");
  s.elapsed_seconds = json::get_f64(doc, "elapsed_seconds");
  const json::Value& eta = json::require(doc, "eta_seconds");
  if (eta.kind != json::Value::Kind::kNull)
    s.eta_seconds = json::as_f64(eta, "eta_seconds");
  const json::Value& workers = json::get_array(doc, "workers");
  s.worker_busy_fraction.reserve(workers.items.size());
  for (const json::Value& w : workers.items)
    s.worker_busy_fraction.push_back(json::as_f64(w, "workers entry"));
  return s;
}

std::optional<double> status_file_age_seconds(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return std::nullopt;
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(age).count();
  return seconds > 0.0 ? seconds : 0.0;
}

}  // namespace mtr::dist
