#include "dist/status.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace mtr::dist {
namespace {

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Status sweep names come from the registry (identifiers), but escape the
/// two structural characters anyway so the file stays valid JSON.
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string render_status_json(const StatusSnapshot& s) {
  std::string out = "{\"record\": \"status\", \"sweep\": " +
                    json_string(s.sweep) +
                    ", \"cells_done\": " + std::to_string(s.cells_done) +
                    ", \"cells_total\": " + std::to_string(s.cells_total) +
                    ", \"elapsed_seconds\": " + json_double(s.elapsed_seconds) +
                    ", \"eta_seconds\": ";
  out += s.eta_seconds ? json_double(*s.eta_seconds) : "null";
  out += ", \"workers\": [";
  bool first = true;
  for (const double f : s.worker_busy_fraction) {
    if (!first) out += ", ";
    first = false;
    out += json_double(f);
  }
  out += "]}\n";
  return out;
}

void write_status_file(const std::string& path, const StatusSnapshot& s) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open status file: " + tmp);
    out << render_status_json(s);
    out.flush();
    if (!out) throw std::runtime_error("cannot write status file: " + tmp);
  }
  // rename(2) within one directory is atomic: a concurrent reader sees
  // either the previous snapshot or this one, never a prefix.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("cannot publish status file " + path + ": " +
                             ec.message());
}

}  // namespace mtr::dist
