// mtr_merge: folds per-shard CSV/JSONL sweep outputs back into one
// canonical grid-order dataset. Inputs are validated hard — schema
// versions, incomplete shard tails, duplicate or conflicting cells, gaps
// in the cell-index space — and JSONL `record:"cell"` aggregates are
// recomputed from the shard's run records (and cross-checked against what
// the shard wrote), so the merged files are byte-identical to a
// single-process run of the same grid.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace mtr::dist {

/// Why a merge failed, doubling as the process exit code — scripts and the
/// mtr_fleet supervisor branch on it. 2 means the input bytes are unusable
/// (torn tail, schema mixing, corrupt aggregate); 3 means the shard SET is
/// wrong (a gap in the cell-index space or overlapping shards) while each
/// individual file may be fine.
enum class MergeFault : int { kCorrupt = 2, kGapOrDuplicate = 3 };

/// A merge validation failure carrying its taxonomy code. Derives from
/// std::runtime_error so callers that only want the message still work.
class MergeError : public std::runtime_error {
 public:
  MergeError(MergeFault fault, const std::string& message)
      : std::runtime_error(message), fault(fault) {}
  MergeFault fault;
};

struct MergeOptions {
  bool help = false;
  bool allow_gaps = false;            // --allow-gaps
  std::string csv_out;                // --csv
  std::string jsonl_out;              // --jsonl
  std::string metrics_out;            // --metrics
  std::vector<std::string> csv_in;    // positional *.csv
  std::vector<std::string> jsonl_in;  // positional *.jsonl
  std::vector<std::string> metrics_in;  // positional *.json (metrics files)
};

/// Parses mtr_merge argv; throws std::runtime_error (with usage appended)
/// on malformed input.
MergeOptions parse_merge_args(int argc, const char* const* argv);

/// Merges shard JSONL files into the canonical byte stream. `cell_indices`,
/// when non-null, receives the merged cell indices in emission order (for
/// cross-format consistency checks). Throws MergeError on any validation
/// failure. `allow_gaps` downgrades cell-index gaps (and empty input sets)
/// from errors to entries in `missing` — the partial-fleet merge path.
std::string merge_jsonl(const std::vector<std::string>& inputs,
                        std::vector<std::uint64_t>* cell_indices = nullptr,
                        bool allow_gaps = false,
                        std::vector<std::uint64_t>* missing = nullptr);

/// Same for shard CSV files (canonical header + rows in cell-index order).
std::string merge_csv(const std::vector<std::string>& inputs,
                      std::vector<std::uint64_t>* cell_indices = nullptr,
                      bool allow_gaps = false,
                      std::vector<std::uint64_t>* missing = nullptr);

/// Runs a full merge: validates the option combination, merges each
/// configured format, cross-checks them, and writes the outputs (creating
/// parent directories). Returns a process exit code (0 ok, 1 output write
/// failure, 2 usage error or corrupt input, 3 gap/duplicate — see
/// MergeFault).
int run_merge(const MergeOptions& options, std::ostream& out, std::ostream& err);

/// The whole CLI: parse + run + error reporting. `main` forwards here.
int merge_main(int argc, const char* const* argv);

}  // namespace mtr::dist
