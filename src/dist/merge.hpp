// mtr_merge: folds per-shard CSV/JSONL sweep outputs back into one
// canonical grid-order dataset. Inputs are validated hard — schema
// versions, incomplete shard tails, duplicate or conflicting cells, gaps
// in the cell-index space — and JSONL `record:"cell"` aggregates are
// recomputed from the shard's run records (and cross-checked against what
// the shard wrote), so the merged files are byte-identical to a
// single-process run of the same grid.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mtr::dist {

struct MergeOptions {
  bool help = false;
  std::string csv_out;                // --csv
  std::string jsonl_out;              // --jsonl
  std::string metrics_out;            // --metrics
  std::vector<std::string> csv_in;    // positional *.csv
  std::vector<std::string> jsonl_in;  // positional *.jsonl
  std::vector<std::string> metrics_in;  // positional *.json (metrics files)
};

/// Parses mtr_merge argv; throws std::runtime_error (with usage appended)
/// on malformed input.
MergeOptions parse_merge_args(int argc, const char* const* argv);

/// Merges shard JSONL files into the canonical byte stream. `cell_indices`,
/// when non-null, receives the merged cell indices in emission order (for
/// cross-format consistency checks). Throws std::runtime_error on any
/// validation failure.
std::string merge_jsonl(const std::vector<std::string>& inputs,
                        std::vector<std::uint64_t>* cell_indices = nullptr);

/// Same for shard CSV files (canonical header + rows in cell-index order).
std::string merge_csv(const std::vector<std::string>& inputs,
                      std::vector<std::uint64_t>* cell_indices = nullptr);

/// Runs a full merge: validates the option combination, merges each
/// configured format, cross-checks them, and writes the outputs (creating
/// parent directories). Returns a process exit code (0 ok, 1 merge error,
/// 2 usage error).
int run_merge(const MergeOptions& options, std::ostream& out, std::ostream& err);

/// The whole CLI: parse + run + error reporting. `main` forwards here.
int merge_main(int argc, const char* const* argv);

}  // namespace mtr::dist
