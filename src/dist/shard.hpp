// Shard planning for distributed sweeps: a deterministic partition of the
// invocation-global cell-index space into K disjoint shards. Ownership is
// round-robin (cell % count == index), so every shard gets a balanced mix
// of every sweep's cells and the partition depends only on the spec — any
// machine computing the same grid agrees on who owns what.
#pragma once

#include <cstdint>
#include <string>

namespace mtr::dist {

struct ShardSpec {
  std::uint64_t index = 0;  // 0-based, < count
  std::uint64_t count = 1;  // 1 = no sharding

  bool sharded() const { return count > 1; }
  bool owns(std::uint64_t cell_index) const {
    return cell_index % count == index;
  }
};

/// Parses "I/N" (0-based shard I of N, e.g. "0/3"); throws
/// std::runtime_error with a usage hint on malformed or out-of-range specs.
ShardSpec parse_shard_spec(const std::string& spec);

/// "I/N" — the parseable rendering.
std::string to_string(const ShardSpec& spec);

}  // namespace mtr::dist
