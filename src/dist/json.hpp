// A small strict recursive-descent JSON parser shared by the dist-layer
// readers: the metrics.json parser (dist/metrics.cpp) and the mtr_inspect
// trace-file reader. Numbers keep their raw token so uint64 counters
// survive values a double round-trip would corrupt; anything outside the
// closed grammar our writers emit is rejected with an offset-stamped error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mtr::dist::json {

/// A parsed JSON value.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  // raw number token, or decoded string
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> fields;

  const Value* find(std::string_view name) const {
    for (const auto& [k, v] : fields)
      if (k == name) return &v;
    return nullptr;
  }
};

/// Parses one complete JSON document; throws std::runtime_error with the
/// byte offset on malformed input or trailing bytes.
Value parse_document(std::string_view text);

// Typed field access over object Values; errors name the missing or
// mistyped field.
const Value& require(const Value& obj, std::string_view name);
std::uint64_t get_u64(const Value& obj, std::string_view name);
std::int64_t get_i64(const Value& obj, std::string_view name);
double get_f64(const Value& obj, std::string_view name);
std::string get_string(const Value& obj, std::string_view name);
const Value& get_array(const Value& obj, std::string_view name);
const Value& get_object(const Value& obj, std::string_view name);

// Scalar conversions of a bare number Value (array elements).
std::uint64_t as_u64(const Value& v, std::string_view what);
std::int64_t as_i64(const Value& v, std::string_view what);
double as_f64(const Value& v, std::string_view what);

}  // namespace mtr::dist::json
