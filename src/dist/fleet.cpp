#include "dist/fleet.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/parse.hpp"
#include "dist/fault.hpp"
#include "dist/merge.hpp"
#include "dist/status.hpp"

namespace mtr::dist {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr const char* kUsage =
    "usage: mtr_fleet --out-dir DIR [options] [sweep...]\n"
    "\n"
    "Launches N `mtr_sweep --shard I/N` subprocesses, watches their\n"
    "status-file heartbeats, kills hung shards, restarts failed ones under\n"
    "--resume with capped exponential backoff, and — once every shard\n"
    "completes — stitches the shard outputs with the mtr_merge machinery.\n"
    "Under any fault schedule the merged CSV/JSONL come out byte-identical\n"
    "to a clean single-process run of the same grid.\n"
    "\n"
    "  --out-dir DIR         fleet workspace: shard<i>/ per shard, merged/\n"
    "                        for the stitched outputs (required)\n"
    "  --all                 run every registered sweep\n"
    "  --shards N            fleet width (default 4)\n"
    "  --max-retries R       restarts per shard before giving up (default 2)\n"
    "  --backoff-base MS     base restart delay: retry k waits about\n"
    "                        MS*2^(k-1) plus deterministic jitter, capped\n"
    "                        at 30s (default 250)\n"
    "  --fleet-seed S        seed for the backoff jitter (default 0)\n"
    "  --heartbeat-timeout S kill a shard whose status file goes S seconds\n"
    "                        without an update (default 30; 0 disables)\n"
    "  --wall-timeout S      kill an attempt running longer than S seconds\n"
    "                        (default 0 = disabled)\n"
    "  --poll-ms MS          supervisor poll interval (default 50)\n"
    "  --allow-partial       when a shard exhausts its retries: merge the\n"
    "                        completed shards with --allow-gaps, write a\n"
    "                        machine-readable merged/gaps.json manifest,\n"
    "                        and exit 0\n"
    "  --no-metrics          skip per-shard --metrics and the metrics fold\n"
    "  --fault-inject I:SPEC arm fault SPEC (mtr_sweep --fault-inject\n"
    "                        grammar) in shard I's FIRST attempt via\n"
    "                        MTR_FAULT_INJECT; repeatable, one spec per\n"
    "                        shard; restarted attempts run clean\n"
    "  --sweep-bin PATH      mtr_sweep binary (default: next to mtr_fleet)\n"
    "  --scale X / --seeds N / --first-seed S / --threads T / --engine E\n"
    "                        forwarded to every shard\n"
    "  --quiet               only failures and retries on stderr\n"
    "  --help                print this message\n"
    "\n"
    "Exit codes: 0 fleet merged and verified (or --allow-partial wrote the\n"
    "gap manifest); 1 a shard exhausted its retries or the merge failed;\n"
    "2 usage error.\n";

[[noreturn]] void bad_usage(const std::string& message) {
  throw std::runtime_error(message + "\n\n" + kUsage);
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_age(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(to - from)
      .count();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// fork+exec with stdout/stderr redirected into `log_path`. `fault_env`,
/// when non-null, becomes the child's MTR_FAULT_INJECT; otherwise any
/// inherited value is scrubbed — a fault armed in the supervisor's own
/// environment must not leak into every shard and every retry.
pid_t spawn_child(const std::vector<std::string>& args,
                  const std::string& log_path, const char* fault_env) {
  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error("fork failed: " + std::string(std::strerror(errno)));
  if (pid == 0) {
    if (fault_env != nullptr)
      ::setenv("MTR_FAULT_INJECT", fault_env, 1);
    else
      ::unsetenv("MTR_FAULT_INJECT");
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      if (fd > 2) ::close(fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(args[0].c_str(), argv.data());
    ::_exit(127);
  }
  return pid;
}

/// Runs a preflight subprocess to completion, capturing its stdout+stderr.
struct ExecResult {
  int exit_code = -1;
  std::string output;
};

ExecResult run_capture(const std::vector<std::string>& args,
                       const std::string& capture_path) {
  const pid_t pid = spawn_child(args, capture_path, nullptr);
  int st = 0;
  while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {}
  ExecResult r;
  r.exit_code = WIFEXITED(st) ? WEXITSTATUS(st) : -1;
  r.output = slurp(capture_path);
  return r;
}

/// The per-shard supervision record.
struct ShardState {
  unsigned shard = 0;
  pid_t pid = -1;  // -1 = not currently running
  unsigned attempts = 0;
  bool done = false;
  bool failed = false;
  bool hung = false;     // last failure was a supervisor kill
  int exit_code = -1;    // last exit code (-1 if signaled)
  int term_signal = 0;   // last terminating signal (0 if exited)
  double last_heartbeat_age = -1.0;
  Clock::time_point attempt_start;
  Clock::time_point last_alive;
  Clock::time_point next_launch;  // backoff schedule when pid < 0
  fs::file_time_type last_mtime;
  bool have_mtime = false;
  std::string dir, status_path, log_path;
};

std::vector<std::string> shard_argv(const FleetOptions& o,
                                    const std::vector<std::string>& names,
                                    const ShardState& s, bool resume) {
  std::vector<std::string> a;
  a.push_back(o.sweep_bin);
  a.push_back("--shard");
  a.push_back(std::to_string(s.shard) + "/" + std::to_string(o.shards));
  a.push_back("--out-dir");
  a.push_back(s.dir);
  a.push_back("--status-file");
  a.push_back(s.status_path);
  if (o.metrics) {
    a.push_back("--metrics");
    a.push_back(s.dir + "/metrics.json");
  }
  a.push_back("--quiet");
  a.push_back("--no-progress");
  if (resume) a.push_back("--resume");
  if (o.scale) {
    a.push_back("--scale");
    a.push_back(fmt_double(*o.scale));
  }
  if (o.seeds) {
    a.push_back("--seeds");
    a.push_back(std::to_string(*o.seeds));
  }
  if (o.first_seed) {
    a.push_back("--first-seed");
    a.push_back(std::to_string(*o.first_seed));
  }
  if (o.threads) {
    a.push_back("--threads");
    a.push_back(std::to_string(*o.threads));
  }
  if (o.event_driven) {
    a.push_back("--engine");
    a.push_back(*o.event_driven ? "event" : "slice");
  }
  for (const std::string& name : names) a.push_back(name);
  return a;
}

/// The workload flags also forwarded to preflight invocations, so the
/// dry-run cell count matches what the shards will actually run.
void append_workload_flags(const FleetOptions& o, std::vector<std::string>& a) {
  if (o.scale) {
    a.push_back("--scale");
    a.push_back(fmt_double(*o.scale));
  }
  if (o.seeds) {
    a.push_back("--seeds");
    a.push_back(std::to_string(*o.seeds));
  }
  if (o.first_seed) {
    a.push_back("--first-seed");
    a.push_back(std::to_string(*o.first_seed));
  }
}

std::string describe_exit(int status) {
  if (WIFEXITED(status))
    return "exited with code " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "ended with status " + std::to_string(status);
}

/// merged/gaps.json: the machine-readable account of what a partial merge
/// left out — which shards failed (and how) and exactly which global cell
/// indices are therefore absent from the merged files.
void write_gap_manifest(const std::string& path, const FleetOptions& o,
                        std::uint64_t total_cells,
                        const std::vector<ShardState>& states,
                        const std::vector<std::uint64_t>& missing) {
  std::ostringstream os;
  os << "{\"record\": \"gap_manifest\", \"schema\": 1, \"shards\": "
     << o.shards << ", \"total_cells\": " << total_cells
     << ", \"failed_shards\": [";
  bool first = true;
  for (const ShardState& s : states) {
    if (!s.failed) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"shard\": " << s.shard << ", \"attempts\": " << s.attempts
       << ", \"exit_code\": " << s.exit_code
       << ", \"signal\": " << s.term_signal
       << ", \"hung\": " << (s.hung ? "true" : "false")
       << ", \"last_heartbeat_age_seconds\": ";
    if (s.last_heartbeat_age >= 0.0)
      os << fmt_double(s.last_heartbeat_age);
    else
      os << "null";
    os << ", \"log\": \"" << s.log_path << "\"}";
  }
  os << "], \"missing_cells\": [";
  for (std::size_t i = 0; i < missing.size(); ++i)
    os << (i ? ", " : "") << missing[i];
  os << "]}\n";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open gap manifest: " + path);
  out << os.str();
  out.flush();
  if (!out) throw std::runtime_error("cannot write gap manifest: " + path);
}

}  // namespace

std::uint64_t backoff_delay_ms(std::uint64_t base_ms, unsigned attempt,
                               std::uint64_t fleet_seed, unsigned shard) {
  if (attempt == 0) attempt = 1;
  if (base_ms == 0) base_ms = 1;
  constexpr std::uint64_t kCapMs = 30'000;
  const unsigned shift = std::min(attempt - 1, 20u);
  std::uint64_t delay = base_ms << shift;
  if (delay > kCapMs || (delay >> shift) != base_ms) delay = kCapMs;
  // SplitMix64 over (seed, shard, attempt): the jitter is a pure function
  // of the fleet seed, so chaos runs reproduce exactly, while distinct
  // shards decorrelate instead of thundering back in lockstep.
  std::uint64_t z = fleet_seed +
                    0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(shard) + 1) +
                    0xBF58476D1CE4E5B9ull * attempt;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return delay + z % (delay / 2 + 1);
}

FleetOptions default_fleet_options() {
  FleetOptions o;
  o.heartbeat_timeout = kDefaultStaleAfterSeconds;
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) o.sweep_bin = (self.parent_path() / "mtr_sweep").string();
  return o;
}

FleetOptions parse_fleet_args(int argc, const char* const* argv) {
  FleetOptions o = default_fleet_options();
  const auto value = [&](int& i, std::string_view flag) -> std::string {
    if (i + 1 >= argc) bad_usage(std::string(flag) + " requires a value");
    return argv[++i];
  };
  const auto u64_flag = [&](std::string_view flag, const std::string& v) {
    const std::optional<std::uint64_t> x = parse_u64(v);
    if (!x) bad_usage(std::string(flag) + ": invalid integer '" + v + "'");
    return *x;
  };
  const auto f64_flag = [&](std::string_view flag, const std::string& v) {
    const std::optional<double> x = parse_f64(v);
    if (!x) bad_usage(std::string(flag) + ": invalid number '" + v + "'");
    return *x;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") o.help = true;
    else if (arg == "--all") o.all = true;
    else if (arg == "--quiet") o.quiet = true;
    else if (arg == "--allow-partial") o.allow_partial = true;
    else if (arg == "--no-metrics") o.metrics = false;
    else if (arg == "--out-dir") o.out_dir = value(i, arg);
    else if (arg == "--sweep-bin") o.sweep_bin = value(i, arg);
    else if (arg == "--shards") {
      const std::uint64_t v = u64_flag(arg, value(i, arg));
      if (v == 0) bad_usage("--shards must be >= 1");
      o.shards = static_cast<unsigned>(v);
    } else if (arg == "--max-retries") {
      o.max_retries = static_cast<unsigned>(u64_flag(arg, value(i, arg)));
    } else if (arg == "--backoff-base") {
      o.backoff_base_ms = u64_flag(arg, value(i, arg));
    } else if (arg == "--fleet-seed") {
      o.fleet_seed = u64_flag(arg, value(i, arg));
    } else if (arg == "--heartbeat-timeout") {
      const double v = f64_flag(arg, value(i, arg));
      if (v < 0.0) bad_usage("--heartbeat-timeout must be >= 0");
      o.heartbeat_timeout = v;
    } else if (arg == "--wall-timeout") {
      const double v = f64_flag(arg, value(i, arg));
      if (v < 0.0) bad_usage("--wall-timeout must be >= 0");
      o.wall_timeout = v;
    } else if (arg == "--poll-ms") {
      const std::uint64_t v = u64_flag(arg, value(i, arg));
      if (v == 0) bad_usage("--poll-ms must be >= 1");
      o.poll_ms = v;
    } else if (arg == "--fault-inject") {
      const std::string v = value(i, arg);
      const std::size_t colon = v.find(':');
      if (colon == std::string::npos)
        bad_usage("--fault-inject expects SHARD:SPEC, got '" + v + "'");
      const std::optional<std::uint64_t> shard = parse_u64(v.substr(0, colon));
      if (!shard)
        bad_usage("--fault-inject: invalid shard index in '" + v + "'");
      const std::string spec = v.substr(colon + 1);
      parse_fault_plan(spec);  // reject malformed specs at the supervisor
      for (const auto& [existing, unused] : o.faults)
        if (existing == *shard)
          bad_usage("--fault-inject: shard " + std::to_string(*shard) +
                    " already has a fault plan");
      o.faults.emplace_back(static_cast<unsigned>(*shard), spec);
    } else if (arg == "--scale") {
      const double v = f64_flag(arg, value(i, arg));
      if (v <= 0.0) bad_usage("--scale must be > 0");
      o.scale = v;
    } else if (arg == "--seeds") {
      const std::uint64_t v = u64_flag(arg, value(i, arg));
      if (v == 0) bad_usage("--seeds must be >= 1");
      o.seeds = v;
    } else if (arg == "--first-seed") {
      o.first_seed = u64_flag(arg, value(i, arg));
    } else if (arg == "--threads") {
      const std::uint64_t v = u64_flag(arg, value(i, arg));
      if (v == 0) bad_usage("--threads must be >= 1");
      o.threads = static_cast<unsigned>(v);
    } else if (arg == "--engine") {
      const std::string v = value(i, arg);
      if (v == "event") o.event_driven = true;
      else if (v == "slice") o.event_driven = false;
      else bad_usage("--engine must be 'event' or 'slice', got '" + v + "'");
    } else if (!arg.empty() && arg.front() == '-') {
      bad_usage("unknown flag: " + std::string(arg));
    } else {
      o.sweeps.emplace_back(arg);
    }
  }
  return o;
}

int run_fleet(const FleetOptions& options, std::ostream& out, std::ostream& err,
              FleetReport* report) {
  if (options.help) {
    out << kUsage;
    return 0;
  }
  if (options.out_dir.empty()) bad_usage("--out-dir is required");
  if (options.all && !options.sweeps.empty())
    bad_usage("--all conflicts with naming sweeps — pick one");
  if (!options.all && options.sweeps.empty())
    bad_usage("nothing selected — name sweeps or pass --all");
  if (options.sweep_bin.empty())
    bad_usage("--sweep-bin is required (could not locate mtr_sweep next to "
              "this binary)");
  for (const auto& [shard, spec] : options.faults)
    if (shard >= options.shards)
      bad_usage("--fault-inject targets shard " + std::to_string(shard) +
                " but the fleet has " + std::to_string(options.shards) +
                " shard(s)");

  fs::create_directories(options.out_dir);
  const std::string preflight_log =
      (fs::path(options.out_dir) / "preflight.log").string();

  // Preflight 1: resolve --all into concrete sweep names (the merge step
  // needs them to find the per-sweep shard files).
  std::vector<std::string> names = options.sweeps;
  if (options.all) {
    const ExecResult r =
        run_capture({options.sweep_bin, "--list"}, preflight_log);
    if (r.exit_code != 0) {
      err << "mtr_fleet: preflight '" << options.sweep_bin
          << " --list' failed (exit " << r.exit_code << "):\n"
          << r.output;
      return 1;
    }
    std::istringstream lines(r.output);
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t end = line.find_first_of(" \t");
      const std::string name = line.substr(0, end);
      if (!name.empty()) names.push_back(name);
    }
    if (names.empty()) {
      err << "mtr_fleet: preflight --list reported no sweeps\n";
      return 1;
    }
  }

  // Preflight 2: the total cell count, for the gap manifest and the final
  // summary. A dry run is cheap (no cells execute) and uses the exact
  // workload flags the shards get, so the count is authoritative.
  std::uint64_t total_cells = 0;
  {
    std::vector<std::string> a{options.sweep_bin, "--dry-run", "--quiet"};
    append_workload_flags(options, a);
    for (const std::string& name : names) a.push_back(name);
    const ExecResult r = run_capture(a, preflight_log);
    if (r.exit_code != 0) {
      err << "mtr_fleet: preflight dry run failed (exit " << r.exit_code
          << "):\n"
          << r.output;
      return 1;
    }
    // "dry run: S sweep(s), C cell(s)"
    const std::size_t tag = r.output.find("dry run: ");
    const std::size_t comma =
        tag == std::string::npos ? tag : r.output.find(", ", tag);
    if (comma != std::string::npos) {
      const std::size_t start = comma + 2;
      std::size_t digits = start;
      while (digits < r.output.size() &&
             std::isdigit(static_cast<unsigned char>(r.output[digits])))
        ++digits;
      const std::optional<std::uint64_t> cells =
          parse_u64(r.output.substr(start, digits - start));
      if (cells) total_cells = *cells;
    }
    if (total_cells == 0) {
      err << "mtr_fleet: preflight dry run reported no cells:\n" << r.output;
      return 1;
    }
  }

  const unsigned max_attempts = options.max_retries + 1;
  std::vector<ShardState> states(options.shards);
  for (unsigned i = 0; i < options.shards; ++i) {
    ShardState& s = states[i];
    s.shard = i;
    s.dir = (fs::path(options.out_dir) / ("shard" + std::to_string(i))).string();
    s.status_path = s.dir + "/status.json";
    fs::create_directories(s.dir);
  }
  const auto fault_for = [&](unsigned shard) -> const char* {
    for (const auto& [idx, spec] : options.faults)
      if (idx == shard) return spec.c_str();
    return nullptr;
  };

  const auto launch = [&](ShardState& s) {
    ++s.attempts;
    const bool resume = s.attempts > 1;
    s.log_path = s.dir + "/attempt" + std::to_string(s.attempts) + ".log";
    // Faults arm the FIRST attempt only: the schedule's job is to break
    // that attempt and prove the supervisor heals it, not to re-break
    // every retry forever.
    const char* fault = s.attempts == 1 ? fault_for(s.shard) : nullptr;
    const std::vector<std::string> argv =
        shard_argv(options, names, s, resume);
    s.pid = spawn_child(argv, s.log_path, fault);
    s.attempt_start = s.last_alive = Clock::now();
    s.have_mtime = false;
    if (!options.quiet)
      err << "mtr_fleet: shard " << s.shard << ": attempt " << s.attempts
          << "/" << max_attempts << " (pid " << s.pid << ")"
          << (fault != nullptr ? std::string(" [fault: ") + fault + "]" : "")
          << (resume ? " [--resume]" : "") << "\n";
  };

  const auto fail_or_retry = [&](ShardState& s, const std::string& how) {
    s.pid = -1;
    if (s.attempts < max_attempts) {
      const std::uint64_t delay = backoff_delay_ms(
          options.backoff_base_ms, s.attempts, options.fleet_seed, s.shard);
      s.next_launch = Clock::now() + std::chrono::milliseconds(delay);
      err << "mtr_fleet: shard " << s.shard << " " << how << "; retrying in "
          << delay << "ms (attempt " << (s.attempts + 1) << "/" << max_attempts
          << ")\n";
    } else {
      s.failed = true;
      err << "mtr_fleet: shard " << s.shard << " " << how << "; retries "
          << "exhausted\n";
    }
  };

  const auto kill_hung = [&](ShardState& s, const std::string& why) {
    err << "mtr_fleet: shard " << s.shard << " " << why << "; killing pid "
        << s.pid << "\n";
    ::kill(s.pid, SIGKILL);
    int st = 0;
    while (::waitpid(s.pid, &st, 0) < 0 && errno == EINTR) {}
    s.hung = true;
    s.exit_code = -1;
    s.term_signal = SIGKILL;
    fail_or_retry(s, why);
  };

  for (ShardState& s : states) launch(s);

  // The supervision loop: reap exits, observe heartbeats, kill the hung,
  // relaunch the scheduled.
  for (;;) {
    bool pending = false;
    for (ShardState& s : states) {
      if (s.done || s.failed) continue;
      pending = true;
      if (s.pid < 0) {
        if (Clock::now() >= s.next_launch) launch(s);
        continue;
      }
      int st = 0;
      const pid_t r = ::waitpid(s.pid, &st, WNOHANG);
      if (r == s.pid) {
        if (WIFEXITED(st) && WEXITSTATUS(st) == 0) {
          s.pid = -1;
          s.done = true;
          s.exit_code = 0;
          s.term_signal = 0;
          if (!options.quiet)
            err << "mtr_fleet: shard " << s.shard << " complete (attempt "
                << s.attempts << ")\n";
        } else {
          s.hung = false;
          s.exit_code = WIFEXITED(st) ? WEXITSTATUS(st) : -1;
          s.term_signal = WIFSIGNALED(st) ? WTERMSIG(st) : 0;
          fail_or_retry(s, describe_exit(st));
        }
        continue;
      }
      // Liveness: the status file's mtime advancing is the heartbeat. A
      // shard too early (or too torn) to have written one is measured
      // from its launch instant.
      std::error_code ec;
      const fs::file_time_type mtime = fs::last_write_time(s.status_path, ec);
      if (!ec && (!s.have_mtime || mtime != s.last_mtime)) {
        s.last_mtime = mtime;
        s.have_mtime = true;
        s.last_alive = Clock::now();
      }
      const double age = seconds_between(s.last_alive, Clock::now());
      s.last_heartbeat_age = age;
      if (heartbeat_stale(age, options.heartbeat_timeout)) {
        kill_hung(s, "heartbeat stale (" + fmt_age(age) + "s > " +
                         fmt_age(options.heartbeat_timeout) + "s)");
      } else if (options.wall_timeout > 0.0 &&
                 seconds_between(s.attempt_start, Clock::now()) >
                     options.wall_timeout) {
        kill_hung(s, "wall-clock timeout (" +
                         fmt_age(options.wall_timeout) + "s)");
      }
    }
    if (!pending) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }

  std::vector<const ShardState*> failed;
  for (const ShardState& s : states)
    if (s.failed) failed.push_back(&s);

  // The per-shard failure report: everything a human needs to triage
  // without re-running — how it died, how often, and where the log is.
  for (const ShardState* s : failed) {
    err << "mtr_fleet: shard " << s->shard << " FAILED after " << s->attempts
        << " attempt(s): ";
    if (s->hung)
      err << "hung (last heartbeat " << fmt_age(s->last_heartbeat_age)
          << "s before the kill)";
    else if (s->term_signal != 0)
      err << "killed by signal " << s->term_signal;
    else
      err << "exit code " << s->exit_code;
    err << "; log: " << s->log_path << "\n";
  }

  const auto fill_report = [&](bool merged,
                               std::vector<std::uint64_t> missing) {
    if (report == nullptr) return;
    report->shards.clear();
    for (const ShardState& s : states) {
      ShardOutcome o;
      o.shard = s.shard;
      o.succeeded = s.done;
      o.attempts = s.attempts;
      o.exit_code = s.exit_code;
      o.term_signal = s.term_signal;
      o.hung = s.hung;
      o.last_heartbeat_age = s.last_heartbeat_age;
      o.log_path = s.log_path;
      report->shards.push_back(std::move(o));
    }
    report->total_cells = total_cells;
    report->merged = merged;
    report->missing_cells = std::move(missing);
  };

  if (!failed.empty() && !options.allow_partial) {
    fill_report(false, {});
    return 1;
  }
  if (failed.size() == states.size()) {
    err << "mtr_fleet: every shard failed — nothing to merge\n";
    fill_report(false, {});
    return 1;
  }

  // Merge. Partial fleets merge with --allow-gaps semantics and leave a
  // manifest of exactly which cells are absent and why.
  const bool partial = !failed.empty();
  const std::string merged_dir =
      (fs::path(options.out_dir) / "merged").string();
  fs::create_directories(merged_dir);
  std::vector<std::uint64_t> missing_cells;
  for (std::uint64_t c = 0; partial && c < total_cells; ++c)
    for (const ShardState* s : failed)
      if (c % options.shards == s->shard) missing_cells.push_back(c);

  for (const std::string& name : names) {
    MergeOptions m;
    m.allow_gaps = partial;
    m.csv_out = merged_dir + "/" + name + ".csv";
    m.jsonl_out = merged_dir + "/" + name + ".jsonl";
    for (const ShardState& s : states) {
      if (!s.done) continue;
      m.csv_in.push_back(s.dir + "/" + name + ".csv");
      m.jsonl_in.push_back(s.dir + "/" + name + ".jsonl");
    }
    const int rc = run_merge(m, options.quiet ? err : out, err);
    if (rc != 0) {
      err << "mtr_fleet: merge of sweep '" << name << "' failed (exit " << rc
          << ")\n";
      fill_report(false, std::move(missing_cells));
      return 1;
    }
  }
  if (options.metrics) {
    MergeOptions m;
    m.metrics_out = merged_dir + "/metrics.json";
    for (const ShardState& s : states)
      if (s.done) m.metrics_in.push_back(s.dir + "/metrics.json");
    const int rc = run_merge(m, options.quiet ? err : out, err);
    if (rc != 0) {
      err << "mtr_fleet: metrics fold failed (exit " << rc << ")\n";
      fill_report(false, std::move(missing_cells));
      return 1;
    }
  }
  if (partial)
    write_gap_manifest(merged_dir + "/gaps.json", options, total_cells, states,
                       missing_cells);

  if (!options.quiet || partial) {
    err << "mtr_fleet: " << (states.size() - failed.size()) << "/"
        << states.size() << " shard(s) merged";
    if (partial)
      err << " (partial: " << missing_cells.size() << " of " << total_cells
          << " cell(s) missing; see " << merged_dir << "/gaps.json)";
    err << "\n";
  }
  fill_report(true, std::move(missing_cells));
  return 0;
}

int fleet_main(int argc, const char* const* argv) {
  try {
    return run_fleet(parse_fleet_args(argc, argv), std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "mtr_fleet: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace mtr::dist
