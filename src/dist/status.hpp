// The mtr_sweep --status-file heartbeat: a small JSON snapshot of a long
// sweep's health (cells done/total, elapsed, ETA, per-worker busy
// fractions), rewritten after every completed cell. Written via a
// same-directory temp file plus an atomic rename, so external monitors
// (and the future fleet controller's health checks) never read a torn
// half-written document.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mtr::dist {

/// One heartbeat. `sweep` is the sweep currently running; counts cover its
/// active progress span.
struct StatusSnapshot {
  std::string sweep;
  std::uint64_t cells_done = 0;
  std::uint64_t cells_total = 0;
  double elapsed_seconds = 0.0;
  std::optional<double> eta_seconds;  // nullopt renders as JSON null
  /// Per-worker busy fraction (busy seconds / pool wall seconds) of the
  /// running BatchRunner invocation, one entry per pool thread.
  std::vector<double> worker_busy_fraction;
};

/// Serializes `s` as one JSON object (trailing newline included).
std::string render_status_json(const StatusSnapshot& s);

/// Writes `s` to `path` atomically: render to `path` + ".tmp", then rename
/// over `path`. Throws std::runtime_error if the temp file cannot be
/// written or the rename fails.
void write_status_file(const std::string& path, const StatusSnapshot& s);

/// Parses a heartbeat document written by write_status_file. Throws
/// std::runtime_error on malformed JSON or missing fields.
StatusSnapshot read_status_file(const std::string& path);

/// The one definition of "stale" shared by every heartbeat consumer — the
/// mtr_fleet supervisor's hung-shard detector and `mtr_inspect
/// --status-file` must agree, or a shard the inspector calls healthy could
/// be one the supervisor is about to kill.
inline constexpr double kDefaultStaleAfterSeconds = 30.0;

/// True when a heartbeat `age_seconds` old has gone stale against
/// `threshold_seconds`. A non-positive threshold disables the check.
inline bool heartbeat_stale(double age_seconds, double threshold_seconds) {
  return threshold_seconds > 0.0 && age_seconds > threshold_seconds;
}

/// Seconds since `path` was last rewritten (mtime age), or nullopt when the
/// file does not exist yet. Clamped at zero against clock skew.
std::optional<double> status_file_age_seconds(const std::string& path);

}  // namespace mtr::dist
