// The mtr_sweep --status-file heartbeat: a small JSON snapshot of a long
// sweep's health (cells done/total, elapsed, ETA, per-worker busy
// fractions), rewritten after every completed cell. Written via a
// same-directory temp file plus an atomic rename, so external monitors
// (and the future fleet controller's health checks) never read a torn
// half-written document.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mtr::dist {

/// One heartbeat. `sweep` is the sweep currently running; counts cover its
/// active progress span.
struct StatusSnapshot {
  std::string sweep;
  std::uint64_t cells_done = 0;
  std::uint64_t cells_total = 0;
  double elapsed_seconds = 0.0;
  std::optional<double> eta_seconds;  // nullopt renders as JSON null
  /// Per-worker busy fraction (busy seconds / pool wall seconds) of the
  /// running BatchRunner invocation, one entry per pool thread.
  std::vector<double> worker_busy_fraction;
};

/// Serializes `s` as one JSON object (trailing newline included).
std::string render_status_json(const StatusSnapshot& s);

/// Writes `s` to `path` atomically: render to `path` + ".tmp", then rename
/// over `path`. Throws std::runtime_error if the temp file cannot be
/// written or the rename fails.
void write_status_file(const std::string& path, const StatusSnapshot& s);

}  // namespace mtr::dist
