#include "dist/json.hpp"

#include <cstdlib>
#include <stdexcept>

namespace mtr::dist::json {
namespace {

/// Minimal recursive-descent JSON parser — enough for the closed grammar
/// our writers emit (and strict about everything else).
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing bytes after the JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch)
      fail(std::string("expected '") + ch + "', got '" + s_[pos_] + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    const char ch = peek();
    switch (ch) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = ch == 't';
        if (!consume_literal(ch == 't' ? "true" : "false"))
          fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.fields.emplace_back(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size()) {
      const char ch = s_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writers only escape control characters, so non-ASCII code
          // points here mean a hand-edited file; reject rather than guess.
          if (code > 0x7F) fail("unsupported non-ASCII \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t d = pos_;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
      return pos_ > d;
    };
    if (!digits()) fail("bad number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad number fraction");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) fail("bad number exponent");
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.text.assign(s_, start, pos_ - start);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

[[noreturn]] void field_error(std::string_view name, const char* what) {
  throw std::runtime_error("field '" + std::string(name) + "' " + what);
}

}  // namespace

Value parse_document(std::string_view text) {
  return Parser(text).parse_document();
}

const Value& require(const Value& obj, std::string_view name) {
  if (obj.kind != Value::Kind::kObject)
    field_error(name, "looked up on a non-object");
  const Value* v = obj.find(name);
  if (v == nullptr) field_error(name, "is missing");
  return *v;
}

std::uint64_t as_u64(const Value& v, std::string_view what) {
  if (v.kind != Value::Kind::kNumber) field_error(what, "is not a number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.text.c_str(), &end, 10);
  if (errno != 0 || end != v.text.c_str() + v.text.size() ||
      v.text.front() == '-')
    field_error(what, "is not an unsigned integer");
  return x;
}

std::int64_t as_i64(const Value& v, std::string_view what) {
  if (v.kind != Value::Kind::kNumber) field_error(what, "is not a number");
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(v.text.c_str(), &end, 10);
  if (errno != 0 || end != v.text.c_str() + v.text.size())
    field_error(what, "is not an integer");
  return x;
}

double as_f64(const Value& v, std::string_view what) {
  if (v.kind != Value::Kind::kNumber) field_error(what, "is not a number");
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.text.c_str(), &end);
  if (errno != 0 || end != v.text.c_str() + v.text.size())
    field_error(what, "is not a double");
  return x;
}

std::uint64_t get_u64(const Value& obj, std::string_view name) {
  return as_u64(require(obj, name), name);
}

std::int64_t get_i64(const Value& obj, std::string_view name) {
  return as_i64(require(obj, name), name);
}

double get_f64(const Value& obj, std::string_view name) {
  return as_f64(require(obj, name), name);
}

std::string get_string(const Value& obj, std::string_view name) {
  const Value& v = require(obj, name);
  if (v.kind != Value::Kind::kString) field_error(name, "is not a string");
  return v.text;
}

const Value& get_array(const Value& obj, std::string_view name) {
  const Value& v = require(obj, name);
  if (v.kind != Value::Kind::kArray) field_error(name, "is not an array");
  return v;
}

const Value& get_object(const Value& obj, std::string_view name) {
  const Value& v = require(obj, name);
  if (v.kind != Value::Kind::kObject) field_error(name, "is not an object");
  return v;
}

}  // namespace mtr::dist::json
