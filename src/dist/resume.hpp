// Resumable sweeps: ResumeIndex scans the output a previous (possibly
// killed) mtr_sweep invocation left behind, identifies the cells that are
// already complete — full seed set, current schema version, CSV and JSONL
// agreeing — and lets the driver (1) truncate any partial tail back to the
// last complete cell and (2) skip completed cells, so appending the rest
// reproduces the uninterrupted run byte for byte.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "report/sweep.hpp"

namespace mtr::dist {

class ResumeIndex {
 public:
  /// Scans the existing outputs of one sweep invocation. Either path may
  /// be empty (sink not configured) or name a file that does not exist yet
  /// (fresh start) — both contribute nothing. Throws std::runtime_error on
  /// a schema-version mismatch (including output recorded with an older
  /// layout — this build appends v4 records, so v2/v3 files must be merged
  /// with mtr_merge or restarted, never appended to), when a complete cell
  /// was recorded with a
  /// seed set other than `expected_seeds` (resume requires the original
  /// --seeds/--first-seed), or when the CSV and JSONL disagree about a
  /// cell. When both files exist, only cells complete in BOTH count (a
  /// kill can land between the two sink writes). Zero-byte and header-only
  /// files — a shard killed before its first flush — count as "nothing
  /// done yet", never as errors.
  ///
  /// `metrics_cells`, when set, caps the completed prefix at the number of
  /// cells the run's crash-consistent metrics snapshot covers: cells the
  /// records prove but the snapshot missed are rolled back and rerun, so
  /// the resumed fold stays counter-exact (reruns are deterministic, so
  /// the records stay byte-identical either way). The snapshot always
  /// trails the records by at most one cell; if it somehow claims MORE
  /// cells than the records hold (a tear spanning whole cells), the index
  /// resets to zero completed cells and flags metrics_overrun() so the
  /// caller discards the stale snapshot too.
  static ResumeIndex scan(const std::string& csv_path,
                          const std::string& jsonl_path,
                          const std::vector<std::uint64_t>& expected_seeds,
                          std::optional<std::uint64_t> metrics_cells =
                              std::nullopt);

  /// Complete cells found.
  std::size_t size() const { return done_.size(); }

  /// True when the metrics snapshot claimed cells the records cannot back
  /// (see scan): everything reruns and the caller must fold metrics from
  /// scratch instead of seeding from the snapshot.
  bool metrics_overrun() const { return metrics_overrun_; }

  /// Truncates the scanned files back to the end of the last complete
  /// cell, dropping the partial tail a kill left behind. Call once before
  /// reopening the files in append mode.
  void truncate_files() const;

  /// True when this cell is already on disk. Throws std::runtime_error if
  /// the recorded coordinates for this index contradict the current grid —
  /// resuming into output written by a different sweep selection.
  bool completed(const report::GridCellInfo& cell) const;

 private:
  struct Done {
    std::string sweep, attack, scheduler, ptrace;
    std::uint64_t hz = 0, cpu_hz = 0, ram_frames = 0, reclaim_batch = 0;
    bool jiffy_timers = true;
    std::uint64_t population = 1;
    double attacker_fraction = 0.0;
    std::int64_t victim_nice = 0, attacker_nice = 0;
    /// Where the block was recorded (error reports): path + first line.
    std::string path;
    std::uint64_t line = 0;
  };
  std::map<std::uint64_t, Done> done_;
  std::string csv_path_, jsonl_path_;
  std::uint64_t csv_valid_ = 0, jsonl_valid_ = 0;
  bool have_csv_ = false, have_jsonl_ = false;
  bool metrics_overrun_ = false;
};

}  // namespace mtr::dist
