// Reading and folding metrics.json shard files for mtr_merge --metrics and
// mtr_inspect. The writer lives in src/trace (write_metrics_json); this is
// its inverse: typed parsing over dist/json plus the by-sweep-name fold
// that turns N shard metrics files into the one a single-machine run would
// have written (modulo wall-clock, which sums across shards). Reads both
// the current schema v2 (with series/sketches telemetry) and legacy v1
// files, which parse with empty telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/metrics.hpp"

namespace mtr::dist {

/// One parsed metrics.json document.
struct MetricsFile {
  std::uint64_t schema = 0;
  std::uint64_t shards = 0;
  std::vector<trace::SweepMetrics> sweeps;
};

/// Parses a metrics.json written by trace::write_metrics_json. Throws
/// std::runtime_error (prefixed with the path) on unreadable files,
/// malformed JSON, a wrong record tag, or a schema version this build does
/// not understand.
MetricsFile read_metrics_json(const std::string& path);

/// Folds shard metrics by sweep name — first-seen sweep order, counters
/// summed, gauges maxed (SweepMetrics::merge) — and sums the shard counts.
MetricsFile fold_metrics(const std::vector<MetricsFile>& files);

}  // namespace mtr::dist
