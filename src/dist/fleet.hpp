// The mtr_fleet shard supervisor: launches `mtr_sweep --shard I/N`
// subprocesses, watches their status-file heartbeats, kills hung shards,
// restarts failed ones under --resume with capped exponential backoff, and
// — once every shard is done — verifies and merges the shard outputs with
// the in-process mtr_merge machinery. The headline guarantee, proven by
// the chaos tests and CI job: a fleet run under an adversarial fault
// schedule merges byte-identical to a clean single-process run.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mtr::dist {

struct FleetOptions {
  bool help = false;           // --help: print usage and exit 0
  bool all = false;            // --all: run every registered sweep
  bool quiet = false;          // --quiet: forwarded to the shards
  bool allow_partial = false;  // --allow-partial: merge what completed,
                               // write a gap manifest, still exit 0
  bool metrics = true;         // --no-metrics disables the metrics fold
  unsigned shards = 4;         // --shards N: fleet width
  unsigned max_retries = 2;    // --max-retries R: restarts per shard
  std::uint64_t backoff_base_ms = 250;  // --backoff-base MS
  double heartbeat_timeout = 30.0;      // --heartbeat-timeout S (0 = off)
  double wall_timeout = 0.0;            // --wall-timeout S (0 = off)
  std::uint64_t poll_ms = 50;           // supervisor poll interval
  std::uint64_t fleet_seed = 0;         // --fleet-seed: backoff jitter seed
  std::string out_dir;                  // --out-dir DIR (required)
  std::string sweep_bin;  // --sweep-bin PATH; default: mtr_sweep next to
                          // the running executable
  std::vector<std::string> sweeps;  // positional sweep names

  /// --fault-inject I:SPEC (repeatable): arm SPEC in shard I's FIRST
  /// attempt via MTR_FAULT_INJECT. Restarted attempts run clean — the
  /// point is proving the recovery path, not looping the fault forever.
  std::vector<std::pair<unsigned, std::string>> faults;

  // Pass-through workload shape (defaults resolved by the shard's own
  // environment handling when unset).
  std::optional<double> scale;
  std::optional<std::uint64_t> seeds;
  std::optional<std::uint64_t> first_seed;
  std::optional<unsigned> threads;
  std::optional<bool> event_driven;  // --engine event|slice
};

/// How one shard's story ended.
struct ShardOutcome {
  unsigned shard = 0;
  bool succeeded = false;
  unsigned attempts = 0;       // attempts actually launched
  int exit_code = -1;          // last exit code (-1 if signaled)
  int term_signal = 0;         // last terminating signal (0 if exited)
  bool hung = false;           // last failure was a supervisor kill
  double last_heartbeat_age = -1.0;  // seconds at last observation; <0 none
  std::string log_path;        // stderr/stdout log of the last attempt
};

struct FleetReport {
  std::vector<ShardOutcome> shards;
  std::uint64_t total_cells = 0;
  bool merged = false;
  std::vector<std::uint64_t> missing_cells;  // --allow-partial gaps
};

/// Deterministic restart delay: capped exponential backoff on `attempt`
/// (1-based retry ordinal) plus SplitMix64 jitter keyed on
/// (fleet_seed, shard, attempt) — reproducible across runs, decorrelated
/// across shards. Pure so the tests can pin it.
std::uint64_t backoff_delay_ms(std::uint64_t base_ms, unsigned attempt,
                               std::uint64_t fleet_seed, unsigned shard);

FleetOptions default_fleet_options();

/// Parses argv; throws std::runtime_error with a usage message on
/// malformed input.
FleetOptions parse_fleet_args(int argc, const char* const* argv);

/// Runs the fleet: preflight (resolve sweep names, count cells), spawn
/// shards, supervise, merge. Returns a process exit code: 0 all shards
/// succeeded and the merge verified (or --allow-partial and the partial
/// merge + gap manifest were written), 1 shard or merge failure, 2 usage.
/// `report`, when non-null, receives the machine-inspectable outcome.
int run_fleet(const FleetOptions& options, std::ostream& out,
              std::ostream& err, FleetReport* report = nullptr);

/// The whole CLI: parse + run + error reporting. `main` forwards here.
int fleet_main(int argc, const char* const* argv);

}  // namespace mtr::dist
