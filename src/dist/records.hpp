// Reading the sink formats back: block-level scanners over the CSV/JSONL
// files CsvSink/JsonlSink write. A valid file is a sequence of cell blocks
// (the run records of one grid cell, in JSONL followed by its
// `record:"cell"` summary), possibly ending in the partial tail a killed
// sweep left behind. Scanners collect the complete blocks, remember where
// the valid prefix ends (so resume can truncate the tail away), and reject
// unsupported or mixed schema versions outright; the current (v4,
// population axes) and the previous layouts (v3 scenario-axes, v2
// pre-axes) all scan. Shared by ResumeIndex and mtr_merge.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/parse.hpp"

namespace mtr::dist {

// Strict integer parsing (mtr::parse_u64 in common/parse.hpp) is shared
// with the CLI flag parsers: "12abc", " 12", "+0x1f" and negatives are all
// rejected instead of silently accepted the way bare std::stoull would.

/// One reconstructed cell block. `run_lines` hold the input lines verbatim
/// (no trailing newline), so consumers that re-emit them preserve the
/// original bytes exactly.
struct CellBlock {
  /// Schema version of the file this block came from (2, 3, or 4).
  std::uint64_t schema = 0;
  std::uint64_t cell_index = 0;
  std::string sweep;
  std::string attack;
  std::string scheduler;
  std::uint64_t hz = 0;
  // Scenario-axis coordinates; zero/default for v2 blocks (their records
  // predate the axes).
  std::uint64_t cpu_hz = 0;
  std::uint64_t ram_frames = 0;
  std::uint64_t reclaim_batch = 0;
  std::string ptrace;
  bool jiffy_timers = true;
  // Population-axis coordinates (schema v4); defaults for older blocks.
  // attacker_fraction compares exactly: %.17g tokens round-trip bit-exact.
  std::uint64_t population = 1;
  double attacker_fraction = 0.0;
  std::int64_t victim_nice = 0;
  std::int64_t attacker_nice = 0;
  /// 1-based line number of the block's first run record (error reports).
  std::uint64_t first_line = 0;
  std::vector<std::uint64_t> seeds;    // one per run record, in file order
  std::vector<std::string> run_lines;  // verbatim rows / JSONL run lines
  std::string cell_line;               // JSONL only: the summary line
  /// True when the block provably ended: JSONL blocks close on their cell
  /// record; CSV blocks close when the next block starts (the final CSV
  /// block at EOF stays open — the file alone cannot prove it complete).
  bool closed = false;
  /// File offset just past this block's last line.
  std::uint64_t end_offset = 0;
};

struct FileScan {
  std::vector<CellBlock> blocks;  // in file order; only the last may be open
  /// Schema version every record in the file carries (0: no records seen).
  std::uint64_t schema = 0;
  /// Offset just past the last closed block (for CSV: at least the header),
  /// i.e. the safe truncation point that drops any partial tail.
  std::uint64_t valid_bytes = 0;
  /// CSV only: offset just past the header row (0 when the file is empty,
  /// and always 0 for JSONL) — the truncation point when no cell survives.
  std::uint64_t header_bytes = 0;
  bool clean = true;        // false: scanning stopped at a malformed tail
  std::string tail_error;   // why, when !clean
};

/// Scans a JsonlSink file. Throws std::runtime_error (naming the file and
/// line) when the file cannot be opened, any record carries a schema
/// version outside [kMinReadSchemaVersion, kSchemaVersion], or the file
/// mixes versions; malformed structure instead stops the scan
/// (clean=false) so callers can treat the tail as a crash artifact.
FileScan scan_jsonl(const std::string& path);

/// Scans a CsvSink file. Throws on open failure, on a header that matches
/// no supported run_schema_keys() layout, and on schema column mismatches
/// against the header's version.
FileScan scan_csv(const std::string& path);

/// Splits one of our one-line JSON objects into key -> raw-token pairs
/// (string tokens keep their quotes). Returns false on malformed input
/// (e.g. a truncated tail) instead of throwing.
bool parse_json_line(const std::string& line,
                     std::map<std::string, std::string>& out);

/// Typed readers over parse_json_line tokens; nullopt when the key is
/// missing or the token has the wrong shape.
std::optional<std::string> json_string(
    const std::map<std::string, std::string>& fields, const std::string& key);
std::optional<std::uint64_t> json_u64(
    const std::map<std::string, std::string>& fields, const std::string& key);
std::optional<std::int64_t> json_i64(
    const std::map<std::string, std::string>& fields, const std::string& key);
std::optional<double> json_double(
    const std::map<std::string, std::string>& fields, const std::string& key);
std::optional<bool> json_bool(const std::map<std::string, std::string>& fields,
                              const std::string& key);

/// The canonical aggregate keys of a `record:"cell"` line for records of
/// `version`, in CellStats::for_each_stat order — what mtr_merge
/// recomputes. v4 added the pop_* summaries; older versions get the list
/// without them.
std::vector<std::string> cell_stat_keys(std::uint64_t version);

/// The v4 distribution aggregates of a cell record as (cell-record key,
/// run-record column) pairs in CellStats::for_each_sketch order — e.g.
/// ("pop_billing_error_dist", "pop_billing_error_sketch"). mtr_merge
/// decodes the run column of every run, merges, and re-emits the summary.
const std::vector<std::pair<std::string, std::string>>& cell_sketch_columns();

}  // namespace mtr::dist
